#include "lint/lint_core.h"

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

// Suite for fedrec_lint's rule engine. Fixtures live in
// tools/lint/testdata/ (the path is injected as FEDREC_LINT_TESTDATA); each
// known-bad file must produce exactly the expected diagnostic, with the
// expected file:line, and the known-clean file must produce none. The real
// tree is gated separately by the `fedrec_lint_tree` CTest entry.

namespace fedrec::lint {
namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(FEDREC_LINT_TESTDATA) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints fixture `name` under path key `key` with an empty fallible set.
std::vector<Diagnostic> LintFixture(const std::string& name,
                                    const std::string& key) {
  std::vector<Diagnostic> diagnostics;
  LintFile(key, ReadFixture(name), LintContext{}, diagnostics);
  return diagnostics;
}

TEST(ScanLinesTest, SplitsCodeAndComments) {
  const std::vector<ScannedLine> lines =
      ScanLines("int a = 1;  // trailing\n/* block */ int b;\n");
  ASSERT_GE(lines.size(), 2u);
  EXPECT_EQ(lines[0].code, "int a = 1;  ");
  EXPECT_EQ(lines[0].comment, "// trailing");
  EXPECT_EQ(lines[1].code, " int b;");
  EXPECT_EQ(lines[1].comment, " block ");
}

TEST(ScanLinesTest, BlanksStringLiteralBodies) {
  const std::vector<ScannedLine> lines =
      ScanLines("auto s = \"reinterpret_cast // not a comment\";\n");
  EXPECT_EQ(lines[0].code.find("reinterpret_cast"), std::string::npos);
  EXPECT_TRUE(lines[0].comment.empty());
  // The quotes themselves survive so statement shapes stay recognizable.
  EXPECT_NE(lines[0].code.find('"'), std::string::npos);
}

TEST(ScanLinesTest, BlockCommentSpansLines) {
  const std::vector<ScannedLine> lines =
      ScanLines("/* one\ntwo */ int x;\n");
  EXPECT_EQ(lines[0].code, "");
  EXPECT_EQ(lines[0].comment, " one");
  EXPECT_EQ(lines[1].code, " int x;");
}

TEST(ScanLinesTest, RawStringBodyIsBlanked) {
  const std::vector<ScannedLine> lines = ScanLines(
      "auto s = R\"(std::rand() \"quoted\" // fedrec:hot)\";\nint y;\n");
  EXPECT_EQ(lines[0].code.find("std::rand"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("fedrec:hot"), std::string::npos);
  EXPECT_TRUE(lines[0].comment.empty());
  EXPECT_EQ(lines[1].code, "int y;");
}

TEST(LintTest, UpwardIncludeIsExactlyOneLayeringDiagnostic) {
  const auto diagnostics =
      LintFixture("upward_include.cc", "src/data/upward_include.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].file, "src/data/upward_include.cc");
  EXPECT_EQ(diagnostics[0].line, 4u);  // the model/mf_model.h include
  EXPECT_NE(diagnostics[0].message.find("model/mf_model.h"),
            std::string::npos);
}

TEST(LintTest, CrossLeafIncludeIsALayeringDiagnostic) {
  const auto diagnostics =
      LintFixture("cross_include.cc", "src/attack/cross_include.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_EQ(diagnostics[0].line, 4u);  // the shard/wire.h include
}

TEST(LintTest, SameFixtureUnderTestsPathIsExempt) {
  // tests/ may include any layer; the layer DAG binds src/ only.
  const auto diagnostics =
      LintFixture("upward_include.cc", "tests/upward_include.cc");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintTest, RandAndRandomDeviceInFedAreDeterminismDiagnostics) {
  const auto diagnostics =
      LintFixture("rand_in_fed.cc", "src/fed/rand_in_fed.cc");
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "determinism");
  EXPECT_EQ(diagnostics[0].line, 8u);  // std::random_device
  EXPECT_EQ(diagnostics[1].rule, "determinism");
  EXPECT_EQ(diagnostics[1].line, 9u);  // std::rand()
}

TEST(LintTest, DeterminismBansDoNotApplyToBench) {
  const auto diagnostics =
      LintFixture("rand_in_fed.cc", "bench/rand_in_fed.cc");
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintTest, PushBackInHotRegionOnly) {
  const auto diagnostics =
      LintFixture("hot_push_back.cc", "src/fed/hot_push_back.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "hot-alloc");
  EXPECT_EQ(diagnostics[0].line, 9u);  // inside AccumulateRow, not the cold twin
  EXPECT_NE(diagnostics[0].message.find("push_back"), std::string::npos);
}

TEST(LintTest, ObsRecordPathAllocationIsRejected) {
  // The obs registry's contract is an allocation-free record path; a metric
  // Record that builds a std::string or grows a vector inside its
  // `// fedrec:hot` region must fail the lint gate.
  const auto diagnostics =
      LintFixture("obs_hot_metric.cc", "src/obs/obs_hot_metric.cc");
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "hot-alloc");
  EXPECT_EQ(diagnostics[0].line, 14u);  // std::string construction
  EXPECT_EQ(diagnostics[1].rule, "hot-alloc");
  EXPECT_EQ(diagnostics[1].line, 15u);  // push_back
}

TEST(LintTest, ObsLayerMayNotIncludeUpward) {
  // obs ranks between common and the data/model/net tiers, so the fixture
  // that reaches up into model/ fails from src/obs exactly as from src/data.
  const auto diagnostics =
      LintFixture("upward_include.cc", "src/obs/upward_include.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "layering");
  EXPECT_NE(diagnostics[0].message.find("model/mf_model.h"),
            std::string::npos);
}

TEST(LintTest, UnorderedRangeForInShardIsADeterminismDiagnostic) {
  const auto diagnostics =
      LintFixture("unordered_range.cc", "src/shard/unordered_range.cc");
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "determinism");
  EXPECT_EQ(diagnostics[0].line, 10u);  // for (const auto& entry : rows)
}

TEST(LintTest, ReinterpretCastAndNakedCatch) {
  const auto diagnostics =
      LintFixture("error_discipline.cc", "src/common/error_discipline.cc");
  ASSERT_EQ(diagnostics.size(), 2u);
  EXPECT_EQ(diagnostics[0].rule, "error-discipline");
  EXPECT_EQ(diagnostics[0].line, 9u);  // reinterpret_cast
  EXPECT_EQ(diagnostics[1].rule, "error-discipline");
  EXPECT_EQ(diagnostics[1].line, 10u);  // catch (...)
}

TEST(LintTest, ReinterpretCastIsAllowedInWireCc) {
  const auto diagnostics =
      LintFixture("error_discipline.cc", "src/shard/wire.cc");
  // The reinterpret_cast is allowlisted there; the naked catch still fires.
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].line, 10u);
}

TEST(LintTest, DiscardedStatusNeedsTheHeaderPass) {
  // Without the header pass the call site cannot be known to be fallible.
  EXPECT_TRUE(
      LintFixture("discarded_status.cc", "src/data/discarded_status.cc")
          .empty());

  LintContext context;
  CollectFallible(ReadFixture("discarded_status.h"), context);
  EXPECT_EQ(context.fallible_functions.count("SaveCheckpoint"), 1u);

  std::vector<Diagnostic> diagnostics;
  LintFile("src/data/discarded_status.cc", ReadFixture("discarded_status.cc"),
           context, diagnostics);
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].rule, "error-discipline");
  EXPECT_EQ(diagnostics[0].line, 7u);  // SaveCheckpoint("model.bin");
  EXPECT_NE(diagnostics[0].message.find("SaveCheckpoint"), std::string::npos);
}

TEST(LintTest, CleanFixtureIsClean) {
  LintContext context;
  CollectFallible(ReadFixture("discarded_status.h"), context);
  std::vector<Diagnostic> diagnostics;
  LintFile("src/fed/clean.cc", ReadFixture("clean.cc"), context, diagnostics);
  EXPECT_TRUE(diagnostics.empty())
      << (diagnostics.empty() ? "" : diagnostics[0].ToString());
}

TEST(LintTest, DiagnosticFormatIsFileLineRuleMessage) {
  Diagnostic d{"src/fed/x.cc", 12, "determinism", "banned"};
  EXPECT_EQ(d.ToString(), "src/fed/x.cc:12: [determinism] banned");
}

TEST(LintTest, LintOkPragmaSuppressesOneRuleFamily) {
  const std::string content =
      "#include <cstdlib>\n"
      "namespace fedrec {\n"
      "int Draw() { return std::rand(); }  // fedrec:lint-ok(determinism)\n"
      "}\n";
  std::vector<Diagnostic> diagnostics;
  LintFile("src/fed/pragma.cc", content, LintContext{}, diagnostics);
  EXPECT_TRUE(diagnostics.empty());
}

TEST(LintTest, CollectFallibleFindsStatusAndResultDeclarations) {
  LintContext context;
  CollectFallible(
      "Status Flush(const std::string& path) const;\n"
      "[[nodiscard]] Result<std::vector<int>> Load(int x);\n"
      "void Plain(int x);\n"
      "Status ok_variable;\n",
      context);
  EXPECT_EQ(context.fallible_functions.count("Flush"), 1u);
  EXPECT_EQ(context.fallible_functions.count("Load"), 1u);
  EXPECT_EQ(context.fallible_functions.count("Plain"), 0u);
  EXPECT_EQ(context.fallible_functions.count("ok_variable"), 0u);
}

}  // namespace
}  // namespace fedrec::lint
