#include "obs/metrics.h"

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/trace.h"

// Suite for the observability layer: the log2 histogram's bucket math at its
// boundaries, shard merging under real threads, the golden text exposition a
// scrape returns, registry identity semantics, and the trace ring's Chrome
// JSON export. The concurrent cases double as the tsan job's race probes for
// the record-during-scrape path.

namespace fedrec::obs {
namespace {

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 is exactly {0}; bucket i holds [2^(i-1), 2^i); the last bucket
  // absorbs everything wider.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 1u);
  for (std::size_t i = 1; i < 63; ++i) {
    const std::uint64_t top = (std::uint64_t{1} << i) - 1;
    EXPECT_EQ(Histogram::BucketIndex(top), i) << "top of bucket " << i;
    EXPECT_EQ(Histogram::BucketIndex(top + 1), i + 1)
        << "bottom of bucket " << i + 1;
  }
  EXPECT_EQ(Histogram::BucketIndex(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, BucketUpperBoundBoundaries) {
  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  for (std::size_t i = 1; i < Histogram::kBuckets - 1; ++i) {
    EXPECT_EQ(Histogram::BucketUpperBound(i), (std::uint64_t{1} << i) - 1);
  }
  EXPECT_EQ(Histogram::BucketUpperBound(Histogram::kBuckets - 1),
            std::numeric_limits<std::uint64_t>::max());
  // Upper bounds must tile the index mapping: every value lands in the
  // first bucket whose bound covers it.
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{7},
                          std::uint64_t{8}, std::uint64_t{1023}}) {
    EXPECT_LE(v, Histogram::BucketUpperBound(Histogram::BucketIndex(v)));
  }
}

TEST(HistogramTest, ObservationsMergeAcrossThreadShards) {
  Histogram hist;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) hist.Observe(i);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(hist.Count(), kThreads * kPerThread);
  EXPECT_EQ(hist.Sum(), kThreads * (kPerThread * (kPerThread - 1) / 2));
  std::uint64_t buckets[Histogram::kBuckets];
  hist.Snapshot(buckets);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads));  // the zeros
  std::uint64_t total = 0;
  for (std::uint64_t bucket : buckets) total += bucket;
  EXPECT_EQ(total, hist.Count());
}

TEST(HistogramTest, PercentileUpperBoundIsNearestRankOnBuckets) {
  Histogram hist;
  EXPECT_EQ(hist.PercentileUpperBound(50.0), 0u);  // empty
  hist.Observe(7);   // bucket 3 (le 7)
  hist.Observe(8);   // bucket 4 (le 15)
  EXPECT_EQ(hist.PercentileUpperBound(50.0), 7u);
  EXPECT_EQ(hist.PercentileUpperBound(100.0), 15u);
}

TEST(RegistryTest, SameNameAndLabelsIsTheSameMetric) {
  Registry registry;
  Counter* a = registry.GetCounter("fedrec_x_total", "shard=\"0\"");
  Counter* b = registry.GetCounter("fedrec_x_total", "shard=\"0\"");
  Counter* c = registry.GetCounter("fedrec_x_total", "shard=\"1\"");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(registry.GetHistogram("fedrec_h_us"), nullptr);
}

TEST(RegistryTest, GoldenTextExposition) {
  Registry registry;
  registry.GetCounter("fedrec_test_total")->Increment(3);
  registry.GetGauge("fedrec_queue_depth", "shard=\"1\"")->Set(42);
  Histogram* hist = registry.GetHistogram("fedrec_lat_us", "stage=\"x\"");
  hist->Observe(0);
  hist->Observe(1);
  hist->Observe(5);
  hist->Observe(1000);

  std::string text;
  registry.RenderText(text);
  EXPECT_EQ(text,
            "fedrec_test_total 3\n"
            "fedrec_queue_depth{shard=\"1\"} 42\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"0\"} 1\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"1\"} 2\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"3\"} 2\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"7\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"15\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"31\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"63\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"127\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"255\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"511\"} 3\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"1023\"} 4\n"
            "fedrec_lat_us_bucket{stage=\"x\",le=\"+Inf\"} 4\n"
            "fedrec_lat_us_sum{stage=\"x\"} 1006\n"
            "fedrec_lat_us_count{stage=\"x\"} 4\n");
}

TEST(RegistryTest, EmptyHistogramStillRendersAClosedSeries) {
  Registry registry;
  registry.GetHistogram("fedrec_idle_us");
  std::string text;
  registry.RenderText(text);
  EXPECT_EQ(text,
            "fedrec_idle_us_bucket{le=\"0\"} 0\n"
            "fedrec_idle_us_bucket{le=\"+Inf\"} 0\n"
            "fedrec_idle_us_sum 0\n"
            "fedrec_idle_us_count 0\n");
}

TEST(RegistryTest, ConcurrentRecordDuringScrapeIsRaceFree) {
  // Writers hammer the lock-free record paths while the scrape thread
  // renders; tsan asserts the absence of races, the final totals assert no
  // increment was lost.
  Registry registry;
  Counter* counter = registry.GetCounter("fedrec_spin_total");
  Histogram* hist = registry.GetHistogram("fedrec_spin_us");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  std::atomic<bool> scraping{true};
  std::thread scraper([&registry, &scraping] {
    while (scraping.load(std::memory_order_relaxed)) {
      std::string text;
      registry.RenderText(text);
      EXPECT_NE(text.find("fedrec_spin_total"), std::string::npos);
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([counter, hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(i & 1023);
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  scraping.store(false, std::memory_order_relaxed);
  scraper.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
  EXPECT_EQ(hist->Count(), kThreads * kPerThread);
}

TEST(TraceRingTest, RecordsSpansAndRendersChromeJson) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.Record("dropped", "round", 1, 1);  // disabled: must be a no-op
  EXPECT_EQ(ring.recorded(), 0u);

  ring.Enable(8);
  ring.Record("route", "round", 100, 20);
  ring.Record("apply", "round", 130, 5);
  EXPECT_EQ(ring.recorded(), 2u);

  std::string json;
  ring.RenderJson(json);
  // The recording thread's slot id depends on how many threads ran before
  // this test, so splice it into the golden string.
  const std::string tid = std::to_string(ThreadSlot());
  EXPECT_EQ(json,
            "{\"traceEvents\":["
            "{\"name\":\"route\",\"cat\":\"round\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":" + tid + ",\"ts\":100,\"dur\":20},"
            "{\"name\":\"apply\",\"cat\":\"round\",\"ph\":\"X\",\"pid\":1,"
            "\"tid\":" + tid + ",\"ts\":130,\"dur\":5}]}");
}

TEST(TraceRingTest, RingWrapsKeepingCapacityMostRecentSpans) {
  TraceRing ring;
  ring.Enable(4);
  for (std::uint64_t i = 0; i < 6; ++i) ring.Record("span", "round", i, 1);
  EXPECT_EQ(ring.recorded(), 6u);
  std::string json;
  ring.RenderJson(json);
  // 4 slots live after the wrap: count the "ph" keys.
  std::size_t events = 0;
  for (std::size_t pos = json.find("\"ph\""); pos != std::string::npos;
       pos = json.find("\"ph\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, 4u);
}

TEST(TraceRingTest, ScopedSpanObservesDurationIntoHistogram) {
  // ScopedSpan writes the global ring; enable it locally and restore.
  TraceRing& ring = TraceRing::Global();
  const bool was_enabled = ring.enabled();
  ring.Enable(8);
  Histogram hist;
  {
    ScopedSpan span("unit_test_span", &hist);
  }
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_GE(ring.recorded(), 1u);
  std::string json;
  ring.RenderJson(json);
  EXPECT_NE(json.find("unit_test_span"), std::string::npos);
  if (!was_enabled) ring.Disable();
}

}  // namespace
}  // namespace fedrec::obs
