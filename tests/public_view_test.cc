#include "data/public_view.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedrec {
namespace {

Dataset MakeData(std::uint64_t seed = 1) {
  SyntheticConfig config;
  config.num_users = 120;
  config.num_items = 200;
  config.mean_interactions_per_user = 40.0;
  config.seed = seed;
  return GenerateSynthetic(config);
}

TEST(PublicViewTest, XiZeroIsEmpty) {
  const Dataset ds = MakeData();
  Rng rng(1);
  const auto view = PublicInteractions::Sample(ds, 0.0, rng);
  EXPECT_EQ(view.TotalCount(), 0u);
  EXPECT_EQ(view.UsersWithPublicData(), 0u);
  EXPECT_TRUE(view.AllInteractions().empty());
}

TEST(PublicViewTest, SubsetOfTrainingData) {
  const Dataset ds = MakeData();
  Rng rng(2);
  const auto view = PublicInteractions::Sample(ds, 0.1, rng);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    for (std::uint32_t item : view.UserItems(u)) {
      EXPECT_TRUE(ds.HasInteraction(u, item))
          << "public (" << u << "," << item << ") not in D";
    }
  }
}

TEST(PublicViewTest, RoundModeFractionApproximatelyXi) {
  const Dataset ds = MakeData();
  Rng rng(3);
  const auto view = PublicInteractions::Sample(ds, 0.1, rng);
  const double fraction = static_cast<double>(view.TotalCount()) /
                          static_cast<double>(ds.num_interactions());
  EXPECT_NEAR(fraction, 0.1, 0.03);
}

TEST(PublicViewTest, PerUserCountIsRounded) {
  const Dataset ds = MakeData();
  Rng rng(4);
  const auto view = PublicInteractions::Sample(ds, 0.1, rng);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const double exact = 0.1 * static_cast<double>(ds.UserItems(u).size());
    const auto expected = static_cast<std::size_t>(std::llround(exact));
    EXPECT_EQ(view.UserItems(u).size(), std::min(expected, ds.UserItems(u).size()));
  }
}

TEST(PublicViewTest, CeilModeGuaranteesOneItem) {
  const Dataset ds = MakeData();
  Rng rng(5);
  const auto view =
      PublicInteractions::Sample(ds, 0.001, rng, PublicSamplingMode::kCeil);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_GE(view.UserItems(u).size(), 1u);
  }
}

TEST(PublicViewTest, BernoulliModeFraction) {
  const Dataset ds = MakeData();
  Rng rng(6);
  const auto view =
      PublicInteractions::Sample(ds, 0.2, rng, PublicSamplingMode::kBernoulli);
  const double fraction = static_cast<double>(view.TotalCount()) /
                          static_cast<double>(ds.num_interactions());
  EXPECT_NEAR(fraction, 0.2, 0.03);
}

TEST(PublicViewTest, FullExposureAtXiOne) {
  const Dataset ds = MakeData();
  Rng rng(7);
  const auto view = PublicInteractions::Sample(ds, 1.0, rng);
  EXPECT_EQ(view.TotalCount(), ds.num_interactions());
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_EQ(view.UserItems(u), ds.UserItems(u));
  }
}

TEST(PublicViewTest, ContainsMatchesUserItems) {
  const Dataset ds = MakeData();
  Rng rng(8);
  const auto view = PublicInteractions::Sample(ds, 0.3, rng);
  for (std::size_t u = 0; u < 20; ++u) {
    for (std::uint32_t item : view.UserItems(u)) {
      EXPECT_TRUE(view.Contains(u, item));
    }
    EXPECT_FALSE(view.Contains(u, 199));  // likely absent; verify consistency
  }
}

TEST(PublicViewTest, ItemsSortedPerUser) {
  const Dataset ds = MakeData();
  Rng rng(9);
  const auto view = PublicInteractions::Sample(ds, 0.5, rng);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    const auto& items = view.UserItems(u);
    EXPECT_TRUE(std::is_sorted(items.begin(), items.end()));
  }
}

TEST(PublicViewTest, DeterministicPerSeed) {
  const Dataset ds = MakeData();
  Rng rng1(10), rng2(10);
  const auto a = PublicInteractions::Sample(ds, 0.05, rng1);
  const auto b = PublicInteractions::Sample(ds, 0.05, rng2);
  EXPECT_EQ(a.TotalCount(), b.TotalCount());
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_EQ(a.UserItems(u), b.UserItems(u));
  }
}

TEST(PublicViewTest, InvalidXiAborts) {
  const Dataset ds = MakeData();
  Rng rng(11);
  EXPECT_DEATH(PublicInteractions::Sample(ds, -0.1, rng), "");
  EXPECT_DEATH(PublicInteractions::Sample(ds, 1.1, rng), "");
}

}  // namespace
}  // namespace fedrec
