#include <algorithm>
#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "attack/fedrecattack.h"
#include "attack/model_poison.h"
#include "common/math.h"
#include "data/public_view.h"
#include "data/synthetic.h"
#include "fed/aggregator.h"
#include "model/metrics.h"
#include "model/topk.h"

namespace fedrec {
namespace {

// ---------------------------------------------------------------------------
// Property: gradient clipping always enforces the bound, never changes
// direction, and is idempotent. Swept over dimension x bound x seed.
// ---------------------------------------------------------------------------

class ClipProperty
    : public ::testing::TestWithParam<std::tuple<int, float, int>> {};

TEST_P(ClipProperty, BoundDirectionIdempotence) {
  const auto [dim, bound, seed] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed));
  std::vector<float> v(dim);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian(0.0, 3.0));
  const std::vector<float> original = v;

  ClipL2(v, bound);
  EXPECT_LE(L2Norm(v), bound * 1.0001f);
  // Direction preserved: v is a non-negative multiple of the original.
  const float original_norm = L2Norm(original);
  if (original_norm > 0.0f) {
    const float cosine = Dot(v, original) / (L2Norm(v) * original_norm + 1e-12f);
    if (L2Norm(v) > 0.0f) {
      EXPECT_NEAR(cosine, 1.0f, 1e-4f);
    }
  }
  // Idempotent.
  const std::vector<float> once = v;
  ClipL2(v, bound);
  for (int d = 0; d < dim; ++d) EXPECT_FLOAT_EQ(v[d], once[d]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClipProperty,
    ::testing::Combine(::testing::Values(1, 4, 32, 128),
                       ::testing::Values(0.1f, 1.0f, 10.0f),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Property: the attack's g function (Eq. 14) is monotone, continuous, bounded
// below by -1, and its derivative is in (0, 1].
// ---------------------------------------------------------------------------

class GFunctionProperty : public ::testing::TestWithParam<double> {};

TEST_P(GFunctionProperty, ShapeInvariants) {
  const double x = GetParam();
  EXPECT_GE(AttackG(x), -1.0);  // bounded below by -1 (the stealth mechanism)
  EXPECT_GT(AttackGPrime(x), 0.0);
  EXPECT_LE(AttackGPrime(x), 1.0);
  // Monotone non-decreasing (flat only in the deep negative tail where the
  // double representation of e^x - 1 saturates at -1).
  EXPECT_GE(AttackG(x + 1e-3), AttackG(x));
  // g lies on or above its tangent line y = x (e^x - 1 >= x), with equality
  // exactly on x >= 0.
  EXPECT_GE(AttackG(x), x);
  if (x >= 0.0) {
    EXPECT_DOUBLE_EQ(AttackG(x), x);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, GFunctionProperty,
                         ::testing::Values(-50.0, -5.0, -1.0, -0.1, 0.0, 0.1,
                                           1.0, 5.0, 50.0));

// ---------------------------------------------------------------------------
// Property: every aggregator is permutation invariant and maps all-zero
// uploads to a zero gradient.
// ---------------------------------------------------------------------------

class AggregatorProperty : public ::testing::TestWithParam<AggregatorKind> {};

TEST_P(AggregatorProperty, PermutationInvariantAndZeroPreserving) {
  AggregatorOptions options;
  options.kind = GetParam();
  // Krum sums the 2 closest neighbours here; with the distinct geometric
  // spacing below every client has a unique score, so no argmin ties (two
  // mutual nearest neighbours tie by construction when only 1 neighbour
  // counts, which would make any aggregator order-dependent).
  options.krum_honest = 4;

  const float values[5] = {1.0f, 2.0f, 4.0f, 8.0f, 100.0f};
  std::vector<ClientUpdate> updates;
  for (std::uint32_t c = 0; c < 5; ++c) {
    ClientUpdate update;
    update.user = c;
    update.item_gradients = SparseRowMatrix(3);
    for (int r = 0; r < 4; ++r) {
      auto row = update.item_gradients.RowMutable((c + static_cast<std::uint32_t>(r) * 2) % 8);
      for (std::size_t d = 0; d < row.size(); ++d) {
        row[d] = values[c] * (1.0f + 0.1f * static_cast<float>(d));
      }
    }
    updates.push_back(std::move(update));
  }
  const Matrix forward = AggregateUpdates(updates, 8, 3, options);
  std::reverse(updates.begin(), updates.end());
  const Matrix backward = AggregateUpdates(updates, 8, 3, options);
  for (std::size_t i = 0; i < forward.rows(); ++i) {
    for (std::size_t d = 0; d < forward.cols(); ++d) {
      EXPECT_NEAR(forward.At(i, d), backward.At(i, d), 1e-5)
          << "row " << i << " dim " << d;
    }
  }

  // All-zero uploads aggregate to zero.
  std::vector<ClientUpdate> zeros(3);
  for (auto& update : zeros) {
    update.item_gradients = SparseRowMatrix(3);
    update.item_gradients.RowMutable(0);
  }
  const Matrix z = AggregateUpdates(zeros, 8, 3, options);
  EXPECT_FLOAT_EQ(z.FrobeniusNorm(), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(Sweep, AggregatorProperty,
                         ::testing::Values(AggregatorKind::kSum,
                                           AggregatorKind::kTrimmedMean,
                                           AggregatorKind::kMedian,
                                           AggregatorKind::kNormBound,
                                           AggregatorKind::kKrum));

// ---------------------------------------------------------------------------
// Property: the public view D' is always a subset of D with per-user fraction
// consistent with xi, across xi values and sampling modes.
// ---------------------------------------------------------------------------

class PublicViewProperty
    : public ::testing::TestWithParam<std::tuple<double, PublicSamplingMode>> {};

TEST_P(PublicViewProperty, SubsetAndFraction) {
  const auto [xi, mode] = GetParam();
  SyntheticConfig config;
  config.num_users = 150;
  config.num_items = 200;
  config.mean_interactions_per_user = 30.0;
  config.seed = 5;
  const Dataset ds = GenerateSynthetic(config);
  Rng rng(9);
  const auto view = PublicInteractions::Sample(ds, xi, rng, mode);

  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    for (std::uint32_t item : view.UserItems(u)) {
      ASSERT_TRUE(ds.HasInteraction(u, item));
    }
  }
  const double fraction = static_cast<double>(view.TotalCount()) /
                          static_cast<double>(ds.num_interactions());
  if (xi == 0.0) {
    EXPECT_EQ(view.TotalCount(), 0u);
  } else if (mode == PublicSamplingMode::kCeil) {
    EXPECT_GE(fraction, xi * 0.8);  // ceil can only over-expose
  } else {
    EXPECT_NEAR(fraction, xi, std::max(0.02, xi * 0.35));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PublicViewProperty,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.05, 0.2),
                       ::testing::Values(PublicSamplingMode::kRound,
                                         PublicSamplingMode::kCeil,
                                         PublicSamplingMode::kBernoulli)));

// ---------------------------------------------------------------------------
// Property: FedRecAttack uploads satisfy the kappa and C constraints of
// Eq. (9) for every (kappa, C) combination.
// ---------------------------------------------------------------------------

class AttackConstraintProperty
    : public ::testing::TestWithParam<std::tuple<std::size_t, float>> {};

TEST_P(AttackConstraintProperty, UploadsSatisfyEq9) {
  const auto [kappa, clip] = GetParam();
  SyntheticConfig data_config;
  data_config.num_users = 50;
  data_config.num_items = 70;
  data_config.mean_interactions_per_user = 10.0;
  data_config.seed = 3;
  const Dataset data = GenerateSynthetic(data_config);
  Rng rng(4);
  const auto view = PublicInteractions::Sample(data, 0.2, rng,
                                               PublicSamplingMode::kCeil);

  FedRecAttackConfig config;
  config.target_items = {7, 11};
  config.kappa = kappa;
  config.clip_norm = clip;
  config.rec_k = 5;
  config.approx_epochs_first = 5;
  config.seed = 6;
  FedRecAttack attack(config, &view, data.num_users(), 6);

  FedConfig fed;
  fed.model.dim = 6;
  Rng model_rng(8);
  MfModel model(data.num_items(), fed.model, model_rng);
  RoundContext context;
  context.model = &model;
  context.config = &fed;
  context.num_benign_users = data.num_users();

  std::vector<std::uint32_t> malicious;
  for (std::uint32_t i = 0; i < 3; ++i) {
    malicious.push_back(static_cast<std::uint32_t>(data.num_users() + i));
  }
  for (int round = 0; round < 3; ++round) {
    const auto updates = attack.ProduceUpdates(context, malicious);
    for (const ClientUpdate& update : updates) {
      EXPECT_LE(update.item_gradients.CountNonZeroRows(), kappa);
      EXPECT_LE(update.item_gradients.MaxRowNorm(), clip * 1.001f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttackConstraintProperty,
    ::testing::Combine(::testing::Values<std::size_t>(2, 10, 20, 60),
                       ::testing::Values(0.1f, 1.0f, 5.0f)));

// ---------------------------------------------------------------------------
// Property: metric values always live in [0, 1], across model seeds and
// target choices.
// ---------------------------------------------------------------------------

class MetricsRangeProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(MetricsRangeProperty, AllMetricsInUnitInterval) {
  const auto [seed, target] = GetParam();
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 80;
  config.mean_interactions_per_user = 10.0;
  config.seed = static_cast<std::uint64_t>(seed);
  const Dataset full = GenerateSynthetic(config);
  Rng rng(static_cast<std::uint64_t>(seed) + 1);
  const LeaveOneOutSplit split = SplitLeaveOneOut(full, rng);

  MetricsConfig metrics_config;
  metrics_config.hr_negatives = 20;
  Evaluator evaluator(split.train, split.test_items, metrics_config, 11);

  Matrix users(split.train.num_users(), 8);
  Matrix items(split.train.num_items(), 8);
  users.FillGaussian(rng, 0.0f, 0.5f);
  items.FillGaussian(rng, 0.0f, 0.5f);

  const MetricsResult r = evaluator.Evaluate(users, items, {target}, nullptr);
  for (double er : r.er_at) {
    EXPECT_GE(er, 0.0);
    EXPECT_LE(er, 1.0);
  }
  EXPECT_GE(r.ndcg, 0.0);
  EXPECT_LE(r.ndcg, 1.0);
  EXPECT_GE(r.hit_ratio, 0.0);
  EXPECT_LE(r.hit_ratio, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MetricsRangeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values<std::uint32_t>(0, 40, 79)));

// ---------------------------------------------------------------------------
// Property: TopK = sorted prefix, for random score vectors of all sizes.
// ---------------------------------------------------------------------------

class TopKProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TopKProperty, PrefixOfFullOrdering) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 131 + k));
  std::vector<float> scores(n);
  for (auto& s : scores) s = rng.NextFloat();

  const auto top = TopKIndices(scores, static_cast<std::size_t>(k), nullptr);
  EXPECT_EQ(top.size(), static_cast<std::size_t>(std::min(n, k)));
  // Descending and a true prefix: no excluded index may beat the last kept.
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(scores[top[i - 1]], scores[top[i]]);
  }
  if (!top.empty()) {
    const float worst_kept = scores[top.back()];
    std::size_t better = 0;
    for (float s : scores) {
      if (s > worst_kept) ++better;
    }
    EXPECT_LE(better, top.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, TopKProperty,
                         ::testing::Combine(::testing::Values(1, 10, 100, 1000),
                                            ::testing::Values(1, 5, 64)));

}  // namespace
}  // namespace fedrec
