#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

TEST(RngTest, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool any_differ = false;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c.Next()) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng rng(99);
  const int buckets = 10, n = 100000;
  std::vector<int> counts(buckets, 0);
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<int>(rng.NextDouble() * buckets)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, n / buckets, 4 * std::sqrt(n / buckets));
  }
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedOneAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(RngTest, NextBoundedZeroAborts) {
  Rng rng(5);
  EXPECT_DEATH(rng.NextBounded(0), "");
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(8);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(4);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextGaussian(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(RngTest, LogNormalMeanMatches) {
  Rng rng(13);
  // E[LogNormal(mu, sigma)] = exp(mu + sigma^2/2); choose mu so mean = 30.
  const double sigma = 0.5;
  const double mu = std::log(30.0) - 0.5 * sigma * sigma;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextLogNormal(mu, sigma);
  EXPECT_NEAR(sum / n, 30.0, 0.5);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
}

TEST(RngTest, ForkedStreamsDiffer) {
  Rng parent(42);
  Rng child0 = parent.Fork(0);
  Rng child1 = parent.Fork(1);
  bool differ = false;
  for (int i = 0; i < 50; ++i) {
    if (child0.Next() != child1.Next()) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(SampleWithoutReplacementTest, ExactCountAndDistinct) {
  Rng rng(31);
  for (std::size_t count : {0u, 1u, 5u, 50u, 100u}) {
    const auto sample = rng.SampleWithoutReplacement(100, count);
    EXPECT_EQ(sample.size(), count);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count);
    for (std::size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(SampleWithoutReplacementTest, FullPopulationIsPermutation) {
  Rng rng(32);
  auto sample = rng.SampleWithoutReplacement(20, 20);
  std::sort(sample.begin(), sample.end());
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(sample[i], i);
}

TEST(SampleWithoutReplacementTest, OverdrawAborts) {
  Rng rng(33);
  EXPECT_DEATH(rng.SampleWithoutReplacement(3, 4), "");
}

TEST(WeightedSampleTest, RespectsZeroWeights) {
  Rng rng(41);
  const std::vector<double> weights{0.0, 1.0, 0.0, 2.0, 0.0, 3.0};
  for (int trial = 0; trial < 200; ++trial) {
    const auto sample = rng.WeightedSampleWithoutReplacement(weights, 3);
    EXPECT_EQ(sample.size(), 3u);
    for (std::size_t idx : sample) {
      EXPECT_GT(weights[idx], 0.0);
    }
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST(WeightedSampleTest, HigherWeightSampledMoreOften) {
  Rng rng(42);
  const std::vector<double> weights{1.0, 10.0};
  int heavy_first = 0;
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    const auto sample = rng.WeightedSampleWithoutReplacement(weights, 1);
    if (sample[0] == 1) ++heavy_first;
  }
  // P(pick heavy) = 10/11 ~ 0.909.
  EXPECT_NEAR(static_cast<double>(heavy_first) / trials, 10.0 / 11.0, 0.03);
}

TEST(WeightedSampleTest, TooFewPositiveWeightsAborts) {
  Rng rng(43);
  const std::vector<double> weights{0.0, 1.0};
  EXPECT_DEATH(rng.WeightedSampleWithoutReplacement(weights, 2), "");
}

TEST(WeightedSampleTest, NegativeWeightAborts) {
  Rng rng(44);
  const std::vector<double> weights{1.0, -0.5};
  EXPECT_DEATH(rng.WeightedSampleWithoutReplacement(weights, 1), "");
}

TEST(WeightedIndexTest, Frequencies) {
  Rng rng(51);
  const std::vector<double> weights{1.0, 3.0};
  int ones = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    if (rng.WeightedIndex(weights) == 1) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / trials, 0.75, 0.02);
}

TEST(WeightedIndexTest, AllZeroAborts) {
  Rng rng(52);
  EXPECT_DEATH(rng.WeightedIndex({0.0, 0.0}), "");
}

TEST(ZipfDistributionTest, PmfSumsToOneAndDecreases) {
  ZipfDistribution zipf(100, 1.0);
  double total = 0.0;
  double prev = 1.0;
  for (std::size_t i = 0; i < 100; ++i) {
    const double p = zipf.pmf(i);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistributionTest, HeadHeavierThanTail) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(61);
  std::size_t head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf(rng) < 100) ++head;  // top decile of ranks
  }
  // With s=1, P(rank < 100) ~ H(100)/H(1000) ~ 5.19/7.49 ~ 0.69.
  EXPECT_GT(static_cast<double>(head) / n, 0.6);
}

TEST(ZipfDistributionTest, SamplesInRange) {
  ZipfDistribution zipf(10, 1.2);
  Rng rng(62);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf(rng), 10u);
  }
}


TEST(RngTest, SnapshotRestoreReplaysTheStreamBitForBit) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) (void)rng.Next();
  (void)rng.NextGaussian();  // may leave a cached Marsaglia-polar spare
  const RngSnapshot snapshot = rng.Snapshot();
  std::vector<double> expected_gaussian;
  std::vector<std::uint64_t> expected_raw;
  for (int i = 0; i < 8; ++i) expected_gaussian.push_back(rng.NextGaussian());
  for (int i = 0; i < 8; ++i) expected_raw.push_back(rng.Next());

  Rng restored(999);  // different seed: Restore must fully reseat the state
  restored.Restore(snapshot);
  for (double value : expected_gaussian) {
    EXPECT_EQ(restored.NextGaussian(), value);
  }
  for (std::uint64_t value : expected_raw) {
    EXPECT_EQ(restored.Next(), value);
  }
}

TEST(RngTest, SnapshotCarriesTheCachedGaussianSpare) {
  // The polar method computes Gaussians in pairs and caches the second; the
  // spare IS stream state, so a snapshot taken mid-pair must carry it (a
  // restore that dropped it would shift every later draw by one).
  Rng rng(7);
  (void)rng.NextGaussian();
  const RngSnapshot snapshot = rng.Snapshot();
  Rng restored(8);
  restored.Restore(snapshot);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(rng.NextGaussian(), restored.NextGaussian());
  }
  EXPECT_EQ(rng.Next(), restored.Next());
}

}  // namespace
}  // namespace fedrec
