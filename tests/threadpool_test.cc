#include "common/threadpool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
}

TEST(ThreadPoolTest, ClampsToAtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (cycle + 1) * 20);
  }
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(&pool, n, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> order;
  ParallelFor(nullptr, 5, [&order](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroCountIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 0, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  ParallelFor(&pool, 1, [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

TEST(ParallelForTest, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  const std::size_t n = 100000;
  std::vector<long long> values(n);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long long> parallel_sum{0};
  ParallelFor(&pool, n, [&](std::size_t i) {
    parallel_sum.fetch_add(values[i], std::memory_order_relaxed);
  });
  const long long serial =
      std::accumulate(values.begin(), values.end(), 0LL);
  EXPECT_EQ(parallel_sum.load(), serial);
}

TEST(DefaultThreadCountTest, AtLeastOne) {
  EXPECT_GE(DefaultThreadCount(), 1u);
}

// --- ThreadPool::ParallelFor (member, static chunking) ---------------------

TEST(MemberParallelForTest, CoversRangeExactlyOnceWithExplicitGrain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.ParallelFor(10, 90, /*grain=*/7,
                   [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << "index " << i;
  }
}

TEST(MemberParallelForTest, GrainLargerThanRangeStillCoversAll) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(0, 10, /*grain=*/1000,
                   [&count](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

TEST(MemberParallelForTest, EmptyRangeIsNoOp) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 1, [&called](std::size_t) { called = true; });
  pool.ParallelFor(7, 3, 1, [&called](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(MemberParallelForTest, AutoGrainMatchesSerialSum) {
  ThreadPool pool(8);
  const std::size_t n = 50000;
  std::atomic<long long> sum{0};
  pool.ParallelFor(0, n, /*grain=*/0, [&sum](std::size_t i) {
    sum.fetch_add(static_cast<long long>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(),
            static_cast<long long>(n) * static_cast<long long>(n - 1) / 2);
}

TEST(MemberParallelForTest, SingleWorkerPoolRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<int> order;  // safe unsynchronized: inline on this thread
  pool.ParallelFor(2, 7, 2,
                   [&order](std::size_t i) { order.push_back(static_cast<int>(i)); });
  EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 5, 6}));
}

}  // namespace
}  // namespace fedrec
