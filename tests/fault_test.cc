#include "common/fault.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "data/synthetic.h"
#include "fed/simulation.h"
#include "shard/shard_plan.h"
#include "shard/sharded_round_engine.h"

namespace fedrec {
namespace {

Dataset SmallData() {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.mean_interactions_per_user = 12.0;
  config.seed = 1;
  return GenerateSynthetic(config);
}

FedConfig SmallConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clients_per_round = 16;
  config.epochs = 3;
  config.seed = 2;
  return config;
}

bool SameStats(const FaultStats& a, const FaultStats& b) {
  return a.dropped_uploads == b.dropped_uploads &&
         a.straggler_uploads == b.straggler_uploads &&
         a.corrupt_messages == b.corrupt_messages &&
         a.shard_outages == b.shard_outages &&
         a.shard_retries == b.shard_retries &&
         a.fallback_shards == b.fallback_shards &&
         a.skipped_rounds == b.skipped_rounds &&
         a.virtual_ticks == b.virtual_ticks;
}

// --- FaultPlan draws --------------------------------------------------------

TEST(FaultPlanTest, DefaultAndZeroRatePlansAreInert) {
  const FaultPlan none;
  EXPECT_FALSE(none.enabled());
  const FaultPlan zero(FaultSpec{}, /*run_seed=*/7);
  EXPECT_FALSE(zero.enabled());
  RoundFaultDraw draw;
  zero.DrawRound(3, 50, draw);
  EXPECT_EQ(draw.dropped, 0u);
  EXPECT_EQ(draw.stragglers, 0u);
  for (const UploadFault& fault : draw.uploads) {
    EXPECT_FALSE(fault.dropped);
    EXPECT_EQ(fault.delay_ticks, 0u);
  }
  EXPECT_FALSE(zero.ShardOutage(1, 2, 0));
  EXPECT_EQ(zero.UploadWireFault(1, 2, 0).kind, WireFaultKind::kNone);
}

TEST(FaultPlanTest, DrawsArePureFunctionsOfTheirKey) {
  FaultSpec spec;
  spec.dropout_rate = 0.3;
  spec.straggler_rate = 0.3;
  spec.upload_corrupt_rate = 0.4;
  spec.shard_outage_rate = 0.4;
  spec.fault_seed = 11;
  const FaultPlan a(spec, /*run_seed=*/5);
  const FaultPlan b(spec, /*run_seed=*/5);

  RoundFaultDraw draw_a;
  RoundFaultDraw draw_b;
  // Query b out of order first: keyed draws must not depend on call history.
  b.DrawRound(9, 20, draw_b);
  for (std::uint64_t round = 0; round < 10; ++round) {
    a.DrawRound(round, 20, draw_a);
    b.DrawRound(round, 20, draw_b);
    ASSERT_EQ(draw_a.uploads.size(), draw_b.uploads.size());
    for (std::size_t i = 0; i < draw_a.uploads.size(); ++i) {
      EXPECT_EQ(draw_a.uploads[i].dropped, draw_b.uploads[i].dropped);
      EXPECT_EQ(draw_a.uploads[i].delay_ticks, draw_b.uploads[i].delay_ticks);
    }
    for (std::uint64_t shard = 0; shard < 4; ++shard) {
      for (std::uint64_t attempt = 0; attempt < 3; ++attempt) {
        EXPECT_EQ(a.ShardOutage(round, shard, attempt),
                  b.ShardOutage(round, shard, attempt));
        const WireFault fa = a.UploadWireFault(round, shard, attempt);
        const WireFault fb = b.UploadWireFault(round, shard, attempt);
        EXPECT_EQ(fa.kind, fb.kind);
        EXPECT_EQ(fa.offset_draw, fb.offset_draw);
        EXPECT_EQ(fa.bit, fb.bit);
      }
    }
  }
}

TEST(FaultPlanTest, DifferentSeedsGiveDifferentSchedules) {
  FaultSpec spec;
  spec.dropout_rate = 0.5;
  spec.fault_seed = 1;
  FaultSpec other = spec;
  other.fault_seed = 2;
  const FaultPlan a(spec, 5);
  const FaultPlan b(other, 5);
  RoundFaultDraw draw_a;
  RoundFaultDraw draw_b;
  bool any_difference = false;
  for (std::uint64_t round = 0; round < 20 && !any_difference; ++round) {
    a.DrawRound(round, 32, draw_a);
    b.DrawRound(round, 32, draw_b);
    for (std::size_t i = 0; i < 32; ++i) {
      if (draw_a.uploads[i].dropped != draw_b.uploads[i].dropped) {
        any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultPlanTest, AttemptsAreIndependentDrawsSoTransientFaultsClear) {
  FaultSpec spec;
  spec.shard_outage_rate = 0.5;
  spec.fault_seed = 3;
  const FaultPlan plan(spec, 9);
  bool cleared_on_retry = false;
  std::size_t outages = 0;
  const std::size_t trials = 400;
  for (std::uint64_t round = 0; round < trials; ++round) {
    const bool first = plan.ShardOutage(round, 0, 0);
    outages += first ? 1u : 0u;
    if (first && !plan.ShardOutage(round, 0, 1)) cleared_on_retry = true;
  }
  EXPECT_TRUE(cleared_on_retry);
  // Rate sanity: 0.5 +- a generous band over 400 Bernoulli draws.
  EXPECT_GT(outages, trials / 4);
  EXPECT_LT(outages, 3 * trials / 4);
}

TEST(FaultPlanTest, StragglerDelaysStayWithinConfiguredBound) {
  FaultSpec spec;
  spec.straggler_rate = 1.0;
  spec.straggler_max_ticks = 6;
  spec.fault_seed = 4;
  const FaultPlan plan(spec, 1);
  RoundFaultDraw draw;
  plan.DrawRound(0, 64, draw);
  for (const UploadFault& fault : draw.uploads) {
    EXPECT_GE(fault.delay_ticks, 1u);
    EXPECT_LE(fault.delay_ticks, 6u);
  }
}

// --- ApplyWireFault ---------------------------------------------------------

TEST(ApplyWireFaultTest, BitFlipChangesExactlyOneBit) {
  std::string buffer = "federated";
  const std::string original = buffer;
  WireFault fault;
  fault.kind = WireFaultKind::kBitFlip;
  fault.offset_draw = 13;  // applied modulo size
  fault.bit = 10;          // applied modulo 8
  EXPECT_TRUE(ApplyWireFault(fault, buffer));
  ASSERT_EQ(buffer.size(), original.size());
  int differing_bits = 0;
  for (std::size_t i = 0; i < buffer.size(); ++i) {
    unsigned delta = static_cast<unsigned char>(buffer[i]) ^
                     static_cast<unsigned char>(original[i]);
    while (delta != 0) {
      differing_bits += delta & 1u;
      delta >>= 1;
    }
  }
  EXPECT_EQ(differing_bits, 1);
}

TEST(ApplyWireFaultTest, TruncateCutsAtOffsetModuloSize) {
  std::string buffer(32, 'x');
  WireFault fault;
  fault.kind = WireFaultKind::kTruncate;
  fault.offset_draw = 37;  // 37 % 32 = 5
  EXPECT_TRUE(ApplyWireFault(fault, buffer));
  EXPECT_EQ(buffer.size(), 5u);
}

TEST(ApplyWireFaultTest, DuplicateAppendsAnExactCopy) {
  std::string buffer = "abc";
  WireFault fault;
  fault.kind = WireFaultKind::kDuplicate;
  EXPECT_TRUE(ApplyWireFault(fault, buffer));
  EXPECT_EQ(buffer, "abcabc");
}

TEST(ApplyWireFaultTest, NoneAndEmptyBuffersAreNoOps) {
  std::string buffer = "abc";
  EXPECT_FALSE(ApplyWireFault(WireFault{}, buffer));
  EXPECT_EQ(buffer, "abc");
  std::string empty;
  WireFault flip;
  flip.kind = WireFaultKind::kBitFlip;
  EXPECT_FALSE(ApplyWireFault(flip, empty));
  EXPECT_TRUE(empty.empty());
}

TEST(ApplyWireFaultTest, KindNamesAreStable) {
  EXPECT_STREQ(WireFaultKindToString(WireFaultKind::kNone), "none");
  EXPECT_STREQ(WireFaultKindToString(WireFaultKind::kBitFlip), "bit-flip");
  EXPECT_STREQ(WireFaultKindToString(WireFaultKind::kTruncate), "truncate");
  EXPECT_STREQ(WireFaultKindToString(WireFaultKind::kDuplicate), "duplicate");
}

// --- Engine integration: transit faults and quorum --------------------------

TEST(RoundEngineFaultTest, InertPlanIsBitIdenticalToNoPlan) {
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();  // zero-rate faults
  Simulation with_plan(data, config, 0, nullptr, nullptr);
  Simulation without_plan(data, config, 0, nullptr, nullptr);
  without_plan.engine().SetFaultPlan(nullptr);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    EXPECT_DOUBLE_EQ(with_plan.RunEpoch(), without_plan.RunEpoch());
  }
  EXPECT_TRUE(with_plan.model().item_factors() ==
              without_plan.model().item_factors());
  EXPECT_EQ(with_plan.engine().fault_stats().dropped_uploads, 0u);
  EXPECT_EQ(with_plan.engine().fault_stats().virtual_ticks, 0u);
}

TEST(RoundEngineFaultTest, SameSeedsReproduceTheSameFailureHistory) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 0.25;
  config.faults.straggler_rate = 0.2;
  config.faults.fault_seed = 17;

  ThreadPool pool(4);
  Simulation serial(data, config, 0, nullptr, nullptr);
  Simulation pooled(data, config, 0, nullptr, &pool);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    EXPECT_DOUBLE_EQ(serial.RunEpoch(), pooled.RunEpoch());
  }
  EXPECT_TRUE(serial.model().item_factors() == pooled.model().item_factors());
  const FaultStats& a = serial.engine().fault_stats();
  const FaultStats& b = pooled.engine().fault_stats();
  EXPECT_TRUE(SameStats(a, b));
  EXPECT_GT(a.dropped_uploads + a.straggler_uploads, 0u);
  EXPECT_GT(a.virtual_ticks, 0u);  // collection deadlines elapsed
}

TEST(RoundEngineFaultTest, DroppedUploadsChangeTheTrajectory) {
  const Dataset data = SmallData();
  FedConfig faulty_config = SmallConfig();
  faulty_config.faults.dropout_rate = 0.5;
  faulty_config.faults.fault_seed = 3;
  Simulation faulty(data, faulty_config, 0, nullptr, nullptr);
  Simulation clean(data, SmallConfig(), 0, nullptr, nullptr);
  // The observer still sees every produced upload (omniscient hook): faults
  // are applied to the aggregation, not to the simulator's view.
  std::size_t observed = 0;
  faulty.SetRoundObserver([&observed](const std::vector<ClientUpdate>& updates,
                                      const std::vector<bool>&) {
    observed += updates.size();
  });
  (void)faulty.RunEpoch();
  (void)clean.RunEpoch();
  EXPECT_EQ(observed, data.num_users());
  EXPECT_GT(faulty.engine().fault_stats().dropped_uploads, 0u);
  EXPECT_FALSE(faulty.model().item_factors() == clean.model().item_factors());
}

TEST(RoundEngineFaultTest, BelowQuorumRoundsAreSkippedNotAggregated) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 1.0;  // every upload lost, every round
  config.faults.fault_seed = 5;
  Simulation sim(data, config, 0, nullptr, nullptr);
  const Matrix initial = sim.model().item_factors();
  (void)sim.RunEpoch();
  const FaultStats& stats = sim.engine().fault_stats();
  EXPECT_EQ(stats.skipped_rounds, sim.global_round());
  EXPECT_GT(stats.skipped_rounds, 0u);
  // Nothing survived, nothing aggregated: the shared model never moved.
  EXPECT_TRUE(sim.model().item_factors() == initial);
}

TEST(RoundEngineFaultTest, ZeroQuorumAggregatesEmptyRoundsCleanly) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 1.0;
  config.faults.fault_seed = 5;
  config.min_round_quorum = 0;  // aggregate even an all-dropped round
  Simulation sim(data, config, 0, nullptr, nullptr);
  const Matrix initial = sim.model().item_factors();
  (void)sim.RunEpoch();
  EXPECT_EQ(sim.engine().fault_stats().skipped_rounds, 0u);
  // An empty round aggregates to an empty delta: well-defined, no movement.
  EXPECT_TRUE(sim.model().item_factors() == initial);
}

TEST(RoundEngineFaultTest, EpochRecordsCarryPerEpochFaultDeltas) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 0.3;
  config.faults.fault_seed = 21;
  Simulation sim(data, config, 0, nullptr, nullptr);
  const std::vector<EpochRecord> records =
      sim.Run(/*evaluator=*/nullptr, /*target_items=*/{}, /*eval_every=*/0);
  ASSERT_EQ(records.size(), config.epochs);
  std::uint64_t dropped = 0;
  std::uint64_t skipped = 0;
  for (const EpochRecord& record : records) {
    dropped += record.dropped_uploads;
    skipped += record.skipped_rounds;
  }
  EXPECT_EQ(dropped, sim.engine().fault_stats().dropped_uploads);
  EXPECT_EQ(skipped, sim.engine().fault_stats().skipped_rounds);
  EXPECT_GT(dropped, 0u);
}

// --- Sharded degraded protocol ----------------------------------------------

/// Drives `epochs` epochs through the sharded path; returns per-epoch losses.
std::vector<double> RunShardedEpochs(Simulation& sim, const FedConfig& config,
                                     const ShardPlan& plan, ThreadPool* pool,
                                     FaultStats* out_wire_stats) {
  ShardedRoundEngine sharded(&sim.engine(), &sim.model(), &config, plan, pool);
  std::vector<double> losses;
  for (std::size_t e = 0; e < config.epochs; ++e) {
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) loss += sharded.RunRound();
    losses.push_back(loss);
  }
  if (out_wire_stats != nullptr) *out_wire_stats = sharded.wire_fault_stats();
  return losses;
}

TEST(ShardedFaultTest, RecoveredWireFaultsLeaveTheModelBitIdentical) {
  // Wire corruption and shard outages are repaired by retries (independent
  // per-attempt draws) or by the coordinator-local fallback, both of which
  // deliver the exact same shard delta — so the trajectory must match the
  // fault-free sharded run bit for bit even while faults fire constantly.
  const Dataset data = SmallData();
  FedConfig faulty_config = SmallConfig();
  faulty_config.faults.upload_corrupt_rate = 0.3;
  faulty_config.faults.delta_corrupt_rate = 0.3;
  faulty_config.faults.shard_outage_rate = 0.2;
  faulty_config.faults.fault_seed = 13;
  const FedConfig clean_config = SmallConfig();

  const ShardPlan plan(data.num_items(), 4, ShardPolicy::kContiguousRange);
  Simulation faulty(data, faulty_config, 0, nullptr, nullptr);
  Simulation clean(data, clean_config, 0, nullptr, nullptr);
  FaultStats wire_stats;
  const std::vector<double> faulty_losses = RunShardedEpochs(
      faulty, faulty_config, plan, nullptr, &wire_stats);
  const std::vector<double> clean_losses =
      RunShardedEpochs(clean, clean_config, plan, nullptr, nullptr);
  ASSERT_EQ(faulty_losses.size(), clean_losses.size());
  for (std::size_t e = 0; e < faulty_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(faulty_losses[e], clean_losses[e]);
  }
  EXPECT_TRUE(faulty.model().item_factors() == clean.model().item_factors());
  EXPECT_GT(wire_stats.corrupt_messages + wire_stats.shard_outages, 0u);
  EXPECT_GT(wire_stats.shard_retries, 0u);
}

TEST(ShardedFaultTest, FailureCountersAreDeterministicForAnyPoolSize) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.epochs = 2;
  config.faults.upload_corrupt_rate = 0.4;
  config.faults.shard_outage_rate = 0.3;
  config.faults.fault_seed = 29;
  const ShardPlan plan(data.num_items(), 4, ShardPolicy::kHashed);

  ThreadPool pool(4);
  Simulation serial(data, config, 0, nullptr, nullptr);
  Simulation pooled(data, config, 0, nullptr, &pool);
  FaultStats serial_stats;
  FaultStats pooled_stats;
  const std::vector<double> serial_losses =
      RunShardedEpochs(serial, config, plan, nullptr, &serial_stats);
  const std::vector<double> pooled_losses =
      RunShardedEpochs(pooled, config, plan, &pool, &pooled_stats);
  for (std::size_t e = 0; e < serial_losses.size(); ++e) {
    EXPECT_DOUBLE_EQ(serial_losses[e], pooled_losses[e]);
  }
  EXPECT_TRUE(serial.model().item_factors() == pooled.model().item_factors());
  EXPECT_TRUE(SameStats(serial_stats, pooled_stats));
  EXPECT_GT(serial_stats.corrupt_messages + serial_stats.shard_outages, 0u);
}

TEST(ShardedFaultTest, TotalOutageFallsBackToCoordinatorEveryRound) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.epochs = 1;
  config.faults.shard_outage_rate = 1.0;  // no shard ever answers
  config.faults.fault_seed = 31;
  const std::size_t num_shards = 3;
  const ShardPlan plan(data.num_items(), num_shards,
                       ShardPolicy::kContiguousRange);

  Simulation faulty(data, config, 0, nullptr, nullptr);
  Simulation clean(data, SmallConfig(), 0, nullptr, nullptr);
  FaultStats wire_stats;
  const std::vector<double> faulty_losses =
      RunShardedEpochs(faulty, config, plan, nullptr, &wire_stats);
  (void)clean.RunEpoch();
  EXPECT_EQ(wire_stats.fallback_shards, num_shards * faulty.global_round());
  EXPECT_EQ(wire_stats.shard_retries,
            config.max_shard_retries * num_shards * faulty.global_round());
  // The fallback aggregates each shard's own row range from the pristine
  // uploads, so even a total outage keeps the model on the exact
  // single-server trajectory.
  EXPECT_TRUE(faulty.model().item_factors() == clean.model().item_factors());
}

TEST(ShardedFaultTest, ZeroQuorumAllDroppedRoundRunsTheShardedPathCleanly) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.epochs = 1;
  config.min_round_quorum = 0;
  config.faults.dropout_rate = 1.0;
  config.faults.fault_seed = 5;
  const ShardPlan plan(data.num_items(), 4, ShardPolicy::kContiguousRange);
  Simulation sim(data, config, 0, nullptr, nullptr);
  const Matrix initial = sim.model().item_factors();
  const std::vector<double> losses =
      RunShardedEpochs(sim, config, plan, nullptr, nullptr);
  EXPECT_EQ(losses.size(), 1u);
  EXPECT_EQ(sim.engine().fault_stats().skipped_rounds, 0u);
  EXPECT_TRUE(sim.model().item_factors() == initial);
}

}  // namespace
}  // namespace fedrec
