#include "shard/sharded_round_engine.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "attack/attack_factory.h"
#include "common/fault.h"
#include "attack/target_select.h"
#include "data/public_view.h"
#include "data/synthetic.h"
#include "fed/simulation.h"
#include "shard/shard_plan.h"
#include "shard/shard_server.h"
#include "shard/wire.h"

namespace fedrec {
namespace {

std::vector<ClientUpdate> RandomUpdates(std::size_t num_clients,
                                        std::size_t num_items, std::size_t dim,
                                        std::size_t rows_per_client,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientUpdate> updates;
  updates.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    ClientUpdate update;
    update.user = static_cast<std::uint32_t>(c);
    update.item_gradients = SparseRowMatrix(dim);
    for (std::size_t r = 0; r < rows_per_client; ++r) {
      auto row = update.item_gradients.RowMutable(rng.NextBounded(num_items));
      for (auto& v : row) v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

// --- ShardPlan -------------------------------------------------------------

TEST(ShardPlanTest, ContiguousRangesPartitionTheRowSpace) {
  for (const auto& [items, shards] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {10, 1}, {10, 3}, {7, 3}, {100, 8}, {5, 8}}) {
    const ShardPlan plan(items, shards, ShardPolicy::kContiguousRange);
    EXPECT_EQ(plan.RangeBegin(0), 0u);
    EXPECT_EQ(plan.RangeEnd(shards - 1), items);
    for (std::size_t s = 0; s + 1 < shards; ++s) {
      EXPECT_EQ(plan.RangeEnd(s), plan.RangeBegin(s + 1));
    }
    for (std::size_t row = 0; row < items; ++row) {
      const std::size_t s = plan.ShardOf(row);
      ASSERT_LT(s, shards);
      EXPECT_GE(row, plan.RangeBegin(s)) << "items=" << items << " row=" << row;
      EXPECT_LT(row, plan.RangeEnd(s)) << "items=" << items << " row=" << row;
    }
  }
}

TEST(ShardPlanTest, HashedIsInRangeDeterministicAndSpread) {
  const ShardPlan plan(1000, 4, ShardPolicy::kHashed);
  std::vector<std::size_t> counts(4, 0);
  for (std::size_t row = 0; row < 1000; ++row) {
    const std::size_t s = plan.ShardOf(row);
    ASSERT_LT(s, 4u);
    EXPECT_EQ(plan.ShardOf(row), s);  // stable
    ++counts[s];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    // A uniform mixer should land far from degenerate on 1000 rows.
    EXPECT_GT(counts[s], 150u);
    EXPECT_LT(counts[s], 350u);
  }
}

TEST(ShardPlanTest, PolicyNamesRoundTrip) {
  EXPECT_STREQ(ShardPolicyToString(ShardPolicy::kContiguousRange),
               "contiguous-range");
  EXPECT_STREQ(ShardPolicyToString(ShardPolicy::kHashed), "hashed");
}

// --- ShardServer bit-identity ----------------------------------------------

/// Runs one full sharded round (route -> aggregate -> wire -> merge) and
/// returns the merged delta.
SparseRoundDelta ShardedAggregate(const ShardPlan& plan,
                                  const std::vector<ClientUpdate>& updates,
                                  std::size_t dim,
                                  const AggregatorOptions& options,
                                  ThreadPool* pool) {
  ShardServer server(plan, dim);
  server.RouteRound(updates, pool);
  // Krum's winner is broadcast as its round sequence number (= index).
  std::uint64_t krum_source = 0;
  if (options.kind == AggregatorKind::kKrum && !updates.empty()) {
    krum_source = KrumSelect(updates, 0, dim, options.krum_honest);
  }
  Status status =
      server.AggregateRound(options, updates.size(), krum_source, pool);
  EXPECT_TRUE(status.ok()) << status.ToString();
  SparseRoundDelta merged;
  status = server.MergeRoundDelta(merged);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return merged;
}

TEST(ShardServerTest, BitIdenticalToSingleServerForAllRulesAndShardCounts) {
  const std::size_t num_items = 40;
  const std::size_t dim = 5;
  const auto updates = RandomUpdates(17, num_items, dim, 12, 1);
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kTrimmedMean,
        AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    AggregatorOptions options;
    options.kind = kind;
    options.krum_honest = 12;

    AggregationWorkspace workspace;
    SparseRoundDelta reference;
    AggregateUpdates(updates, dim, options, workspace, reference);

    for (const ShardPolicy policy :
         {ShardPolicy::kContiguousRange, ShardPolicy::kHashed}) {
      for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
        const ShardPlan plan(num_items, shards, policy);
        const SparseRoundDelta merged =
            ShardedAggregate(plan, updates, dim, options, nullptr);
        ASSERT_EQ(merged.row_count(), reference.row_count())
            << AggregatorKindToString(kind) << " policy="
            << ShardPolicyToString(policy) << " shards=" << shards;
        EXPECT_TRUE(merged.ToDense(num_items) == reference.ToDense(num_items))
            << AggregatorKindToString(kind) << " policy="
            << ShardPolicyToString(policy) << " shards=" << shards;
        for (std::size_t slot = 0; slot < merged.row_count(); ++slot) {
          EXPECT_EQ(merged.rows()[slot], reference.rows()[slot]);
        }
      }
    }
  }
}

TEST(ShardServerTest, PoolParallelShardsStayBitIdentical) {
  const std::size_t num_items = 60;
  const std::size_t dim = 6;
  const auto updates = RandomUpdates(13, num_items, dim, 10, 2);
  ThreadPool pool(4);
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kMedian, AggregatorKind::kKrum}) {
    AggregatorOptions options;
    options.kind = kind;
    options.krum_honest = 9;
    AggregationWorkspace workspace;
    SparseRoundDelta reference;
    AggregateUpdates(updates, dim, options, workspace, reference);
    for (const ShardPolicy policy :
         {ShardPolicy::kContiguousRange, ShardPolicy::kHashed}) {
      const ShardPlan plan(num_items, 4, policy);
      const SparseRoundDelta merged =
          ShardedAggregate(plan, updates, dim, options, &pool);
      EXPECT_TRUE(merged.ToDense(num_items) == reference.ToDense(num_items))
          << AggregatorKindToString(kind) << " policy="
          << ShardPolicyToString(policy);
    }
  }
}

TEST(ShardServerTest, KrumStaysBitIdenticalWhenClientIdsCollide) {
  // A sybil can impersonate a benign client's id; the winner broadcast uses
  // round-unique sequence numbers, so the shards must still emit exactly the
  // Krum-selected upload.
  const std::size_t num_items = 40;
  const std::size_t dim = 5;
  auto updates = RandomUpdates(9, num_items, dim, 8, 6);
  for (ClientUpdate& update : updates) update.user = 3;  // all ids collide
  AggregatorOptions options;
  options.kind = AggregatorKind::kKrum;
  options.krum_honest = 6;
  AggregationWorkspace workspace;
  SparseRoundDelta reference;
  AggregateUpdates(updates, dim, options, workspace, reference);
  const ShardPlan plan(num_items, 4, ShardPolicy::kHashed);
  const SparseRoundDelta merged =
      ShardedAggregate(plan, updates, dim, options, nullptr);
  EXPECT_TRUE(merged.ToDense(num_items) == reference.ToDense(num_items));
}

TEST(ShardServerTest, EmptyRoundYieldsEmptyMergedDelta) {
  const ShardPlan plan(20, 4, ShardPolicy::kContiguousRange);
  const SparseRoundDelta merged =
      ShardedAggregate(plan, {}, 3, AggregatorOptions{}, nullptr);
  EXPECT_TRUE(merged.empty());
  EXPECT_EQ(merged.cols(), 3u);
}

TEST(ShardServerTest, ShardDeltasCoverOnlyOwnedRows) {
  const std::size_t num_items = 50;
  const std::size_t dim = 4;
  const auto updates = RandomUpdates(9, num_items, dim, 8, 3);
  const ShardPlan plan(num_items, 4, ShardPolicy::kHashed);
  ShardServer server(plan, dim);
  server.RouteRound(updates, nullptr);
  server.AggregateRound(AggregatorOptions{}, updates.size(), 0, nullptr)
      .CheckOK();
  std::set<std::size_t> seen;
  for (std::size_t s = 0; s < 4; ++s) {
    for (std::size_t row : server.shard_delta(s).rows()) {
      EXPECT_EQ(plan.ShardOf(row), s);
      EXPECT_TRUE(seen.insert(row).second) << "row on two shards";
    }
  }
}

TEST(ShardServerTest, WireStatsAccumulate) {
  const auto updates = RandomUpdates(6, 30, 4, 5, 4);
  const ShardPlan plan(30, 2, ShardPolicy::kContiguousRange);
  ShardServer server(plan, 4);
  server.RouteRound(updates, nullptr);
  server.AggregateRound(AggregatorOptions{}, updates.size(), 0, nullptr)
      .CheckOK();
  SparseRoundDelta merged;
  server.MergeRoundDelta(merged).CheckOK();
  EXPECT_EQ(server.stats().rounds, 1u);
  EXPECT_GT(server.stats().upload_messages, 0u);
  EXPECT_GT(server.stats().upload_bytes, 0u);
  EXPECT_GT(server.stats().delta_bytes, 0u);
}

TEST(ShardServerTest, MisroutedRowFailsLoudly) {
  const ShardPlan plan(40, 2, ShardPolicy::kContiguousRange);
  ShardServer server(plan, 3);
  // Row 30 belongs to shard 1; deliver it to shard 0's inbox.
  SparseRowMatrix upload(3);
  upload.RowMutable(30)[0] = 1.0f;
  EncodeUpload(upload, 1, server.inbox(0));
  const Status status =
      server.AggregateRound(AggregatorOptions{}, 1, 0, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(ShardServerTest, CorruptInboxFailsLoudly) {
  const ShardPlan plan(40, 2, ShardPolicy::kContiguousRange);
  ShardServer server(plan, 3);
  server.inbox(1).WriteBytes("not a wire message", 18);
  const Status status =
      server.AggregateRound(AggregatorOptions{}, 0, 0, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(ShardServerTest, DimensionMismatchFailsLoudly) {
  const ShardPlan plan(40, 2, ShardPolicy::kContiguousRange);
  ShardServer server(plan, /*dim=*/3);
  SparseRowMatrix upload(5);  // wrong dim
  upload.RowMutable(2)[0] = 1.0f;
  EncodeUpload(upload, 1, server.inbox(0));
  const Status status =
      server.AggregateRound(AggregatorOptions{}, 1, 0, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

// --- ShardedRoundEngine end to end -----------------------------------------

Dataset EngineData() {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.mean_interactions_per_user = 12.0;
  config.seed = 1;
  return GenerateSynthetic(config);
}

FedConfig EngineConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clients_per_round = 16;
  config.epochs = 3;
  config.seed = 2;
  return config;
}

/// Drives `epochs` epochs through the sharded path; returns per-epoch losses.
std::vector<double> RunSharded(Simulation& sim, const FedConfig& config,
                               const ShardPlan& plan, ThreadPool* pool,
                               std::size_t epochs) {
  ShardedRoundEngine sharded(&sim.engine(), &sim.model(), &config, plan, pool);
  std::vector<double> losses;
  for (std::size_t e = 0; e < epochs; ++e) {
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) loss += sharded.RunRound();
    losses.push_back(loss);
  }
  return losses;
}

TEST(ShardedRoundEngineTest, BitIdenticalToSingleServerEngine) {
  const Dataset data = EngineData();
  const FedConfig config = EngineConfig();
  for (const std::size_t shards : {1u, 3u, 8u}) {
    Simulation reference(data, config, 0, nullptr, nullptr);
    Simulation sharded_sim(data, config, 0, nullptr, nullptr);
    const ShardPlan plan(data.num_items(), shards, ShardPolicy::kHashed);
    const std::vector<double> sharded_losses =
        RunSharded(sharded_sim, config, plan, nullptr, 3);
    for (std::size_t e = 0; e < 3; ++e) {
      EXPECT_DOUBLE_EQ(reference.RunEpoch(), sharded_losses[e])
          << "shards=" << shards;
    }
    EXPECT_TRUE(reference.model().item_factors() ==
                sharded_sim.model().item_factors())
        << "shards=" << shards;
  }
}

TEST(ShardedRoundEngineTest, RobustRulesStayBitIdenticalSharded) {
  const Dataset data = EngineData();
  for (const AggregatorKind kind :
       {AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    FedConfig config = EngineConfig();
    config.epochs = 2;
    config.aggregator.kind = kind;
    Simulation reference(data, config, 0, nullptr, nullptr);
    Simulation sharded_sim(data, config, 0, nullptr, nullptr);
    const ShardPlan plan(data.num_items(), 4, ShardPolicy::kContiguousRange);
    const std::vector<double> sharded_losses =
        RunSharded(sharded_sim, config, plan, nullptr, 2);
    for (std::size_t e = 0; e < 2; ++e) {
      EXPECT_DOUBLE_EQ(reference.RunEpoch(), sharded_losses[e])
          << AggregatorKindToString(kind);
    }
    EXPECT_TRUE(reference.model().item_factors() ==
                sharded_sim.model().item_factors())
        << AggregatorKindToString(kind);
  }
}

TEST(ShardedRoundEngineTest, AttackFactoryUploadsFlowThroughRoutedPath) {
  // Poisoned uploads must ride the same wire path as benign ones and leave
  // the trajectory bit-identical to the single-server engine under attack.
  const Dataset data = EngineData();
  Rng rng(11);
  const PublicInteractions view =
      PublicInteractions::Sample(data, 0.05, rng, PublicSamplingMode::kCeil);
  Rng target_rng(12);
  const auto targets =
      SelectTargetItems(data, 1, TargetSelection::kUnpopular, target_rng);

  FedConfig config = EngineConfig();
  config.epochs = 2;
  const std::size_t num_malicious = 6;

  AttackOptions attack_options;
  attack_options.kind = "fedrecattack";
  attack_options.target_items = targets;
  attack_options.kappa = 20;
  attack_options.clip_norm = config.clip_norm;
  AttackInputs inputs;
  inputs.train = &data;
  inputs.public_view = &view;
  inputs.num_benign_users = data.num_users();
  inputs.dim = config.model.dim;

  auto reference_attack = CreateAttack(attack_options, inputs);
  reference_attack.status().CheckOK();
  auto sharded_attack = CreateAttack(attack_options, inputs);
  sharded_attack.status().CheckOK();

  Simulation reference(data, config, num_malicious,
                       reference_attack.value().get(), nullptr);
  Simulation sharded_sim(data, config, num_malicious,
                         sharded_attack.value().get(), nullptr);
  const ShardPlan plan(data.num_items(), 4, ShardPolicy::kHashed);

  std::size_t malicious_uploads_observed = 0;
  ShardedRoundEngine sharded(&sharded_sim.engine(), &sharded_sim.model(),
                             &config, plan, nullptr);
  for (std::size_t e = 0; e < 2; ++e) {
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) {
      loss += sharded.RunRound([&](const std::vector<ClientUpdate>&,
                                   const std::vector<bool>& is_malicious) {
        for (bool flag : is_malicious) {
          if (flag) ++malicious_uploads_observed;
        }
      });
    }
    EXPECT_DOUBLE_EQ(reference.RunEpoch(), loss);
  }
  EXPECT_GT(malicious_uploads_observed, 0u);
  EXPECT_TRUE(reference.model().item_factors() ==
              sharded_sim.model().item_factors());
}

TEST(ShardedRoundEngineTest, SteadyStateRoundsAreAllocationFreeOnTheWirePath) {
  SyntheticConfig data_config;
  data_config.num_users = 60;
  data_config.num_items = 90;
  data_config.mean_interactions_per_user = 12.0;
  data_config.activity_sigma = 0.05;
  data_config.seed = 1;
  const Dataset data = GenerateSynthetic(data_config);
  FedConfig config = EngineConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.rounds_per_epoch = 8;
  Simulation sim(data, config, 0, nullptr, nullptr);
  const ShardPlan plan(data.num_items(), 4, ShardPolicy::kHashed);
  ShardedRoundEngine sharded(&sim.engine(), &sim.model(), &config, plan,
                             nullptr);
  // Warm every buffer's high-water mark. The sharded path needs more warm
  // rounds than the single-server engine: a routed slot's capacity watermark
  // depends on which client's rows hashed to which shard, so the per-shard
  // maxima are only reached once enough distinct selections have occurred.
  std::size_t epoch = 0;
  for (; epoch < 20; ++epoch) {
    sharded.BeginEpoch(epoch);
    while (sharded.HasNextRound()) sharded.RunRound();
  }
  ResetSparseAllocationCount();
  for (; epoch < 23; ++epoch) {
    sharded.BeginEpoch(epoch);
    while (sharded.HasNextRound()) sharded.RunRound();
  }
  EXPECT_EQ(SparseAllocationCount(), 0u);
}


TEST(ShardServerTest, DuplicateDeliveryFailsLoudly) {
  // Whole-inbox duplication (the kDuplicate wire fault) re-delivers every
  // message with an already-seen source id. Each copy's own CRC still
  // validates, so the strictly-ascending source check is what rejects the
  // replay (the message-count check would catch it too).
  const std::size_t dim = 4;
  const auto updates = RandomUpdates(5, 40, dim, 8, 3);
  const ShardPlan plan(40, 2, ShardPolicy::kContiguousRange);
  ShardServer server(plan, dim);
  server.RouteRound(updates, nullptr);
  WireFault duplicate;
  duplicate.kind = WireFaultKind::kDuplicate;
  EXPECT_TRUE(ApplyWireFault(duplicate, server.inbox(0).mutable_buffer()));
  AggregatorOptions options;
  const Status status =
      server.AggregateRound(options, updates.size(), /*krum_source=*/0,
                            /*pool=*/nullptr);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace fedrec
