#include "shard/wire.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedrec {
namespace {

SparseRowMatrix MakeUpload(std::size_t cols, std::initializer_list<std::size_t> rows,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseRowMatrix upload(cols);
  for (std::size_t row : rows) {
    for (float& v : upload.RowMutable(row)) {
      v = static_cast<float>(rng.NextGaussian(0.0, 1.0));
    }
  }
  return upload;
}

SparseRoundDelta MakeDelta(std::size_t cols,
                           std::initializer_list<std::size_t> ascending_rows,
                           std::uint64_t seed) {
  Rng rng(seed);
  SparseRoundDelta delta;
  delta.Reset(cols);
  for (std::size_t row : ascending_rows) {
    for (float& v : delta.AppendRow(row)) {
      v = static_cast<float>(rng.NextGaussian(0.0, 1.0));
    }
  }
  return delta;
}

void ExpectSameRows(const SparseRowMatrix& a, const SparseRowMatrix& b) {
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.row_count(), b.row_count());
  for (std::size_t slot = 0; slot < a.row_count(); ++slot) {
    EXPECT_EQ(a.row_ids()[slot], b.row_ids()[slot]);
    const auto ra = a.RowAtSlot(slot);
    const auto rb = b.RowAtSlot(slot);
    for (std::size_t d = 0; d < a.cols(); ++d) EXPECT_EQ(ra[d], rb[d]);
  }
}

TEST(Crc32Test, MatchesTheIeeeCheckVector) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32(0, check, 9), 0xCBF43926u);
  // Incremental continuation equals the one-shot checksum.
  const std::uint32_t head = Crc32(0, check, 4);
  EXPECT_EQ(Crc32(head, check + 4, 5), 0xCBF43926u);
  EXPECT_EQ(Crc32(0, nullptr, 0), 0u);
}

TEST(WireUploadTest, RoundTripsAllRows) {
  const SparseRowMatrix upload = MakeUpload(6, {12, 3, 40}, 1);
  BinaryWriter writer;
  EncodeUpload(upload, /*source=*/77, writer);

  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  Result<std::uint64_t> source = DecodeUpload(reader, decoded);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_EQ(source.value(), 77u);
  EXPECT_TRUE(reader.exhausted());
  ExpectSameRows(upload, decoded);
}

TEST(WireUploadTest, RoundTripsSlotSubsetInGivenOrder) {
  const SparseRowMatrix upload = MakeUpload(4, {9, 2, 30, 17}, 2);
  const std::uint32_t slots[] = {2, 0};  // rows 30, 9 in that order
  BinaryWriter writer;
  EncodeUpload(upload, 5, slots, writer);

  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  ASSERT_TRUE(DecodeUpload(reader, decoded).ok());
  ASSERT_EQ(decoded.row_count(), 2u);
  EXPECT_EQ(decoded.row_ids()[0], 30u);
  EXPECT_EQ(decoded.row_ids()[1], 9u);
  for (std::size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(decoded.RowAtSlot(0)[d], upload.Row(30)[d]);
    EXPECT_EQ(decoded.RowAtSlot(1)[d], upload.Row(9)[d]);
  }
}

TEST(WireUploadTest, EmptyUploadRoundTrips) {
  const SparseRowMatrix upload(5);
  BinaryWriter writer;
  EncodeUpload(upload, 3, writer);
  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  Result<std::uint64_t> source = DecodeUpload(reader, decoded);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.value(), 3u);
  EXPECT_EQ(decoded.cols(), 5u);
  EXPECT_TRUE(decoded.empty());
  EXPECT_TRUE(reader.exhausted());
}

TEST(WireUploadTest, MessagesAreSelfDelimiting) {
  const SparseRowMatrix first = MakeUpload(3, {1, 5}, 3);
  const SparseRowMatrix second = MakeUpload(3, {2}, 4);
  BinaryWriter writer;
  EncodeUpload(first, 10, writer);
  EncodeUpload(second, 11, writer);

  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  ASSERT_EQ(DecodeUpload(reader, decoded).value(), 10u);
  ExpectSameRows(first, decoded);
  ASSERT_EQ(DecodeUpload(reader, decoded).value(), 11u);
  ExpectSameRows(second, decoded);
  EXPECT_TRUE(reader.exhausted());
}

TEST(WireDeltaTest, RoundTripsEmptySingleAndMultiRow) {
  for (const auto& rows : std::initializer_list<std::initializer_list<std::size_t>>{
           {}, {7}, {0, 3, 4, 90}}) {
    const SparseRoundDelta delta = MakeDelta(5, rows, 9);
    BinaryWriter writer;
    EncodeDelta(delta, writer);
    BinaryReader reader = BinaryReader::View(writer.buffer());
    SparseRoundDelta decoded;
    ASSERT_TRUE(DecodeDelta(reader, decoded).ok());
    EXPECT_TRUE(reader.exhausted());
    ASSERT_EQ(decoded.cols(), delta.cols());
    ASSERT_EQ(decoded.row_count(), delta.row_count());
    for (std::size_t slot = 0; slot < delta.row_count(); ++slot) {
      EXPECT_EQ(decoded.rows()[slot], delta.rows()[slot]);
      for (std::size_t d = 0; d < delta.cols(); ++d) {
        EXPECT_EQ(decoded.RowAtSlot(slot)[d], delta.RowAtSlot(slot)[d]);
      }
    }
  }
}

TEST(WireFailureTest, TruncatedBuffersFailWithCorruption) {
  const SparseRowMatrix upload = MakeUpload(4, {1, 2, 3}, 5);
  BinaryWriter writer;
  EncodeUpload(upload, 1, writer);
  const std::string& wire = writer.buffer();
  // Cut in the magic, the header, mid-payload, and inside the CRC trailer.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{2}, std::size_t{9}, std::size_t{30},
        wire.size() / 2, wire.size() - 2}) {
    BinaryReader reader = BinaryReader::View(
        std::string_view(wire.data(), keep));
    SparseRowMatrix decoded;
    Result<std::uint64_t> result = DecodeUpload(reader, decoded);
    ASSERT_FALSE(result.ok()) << "prefix " << keep << " decoded";
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }

  const SparseRoundDelta delta = MakeDelta(4, {1, 2}, 6);
  BinaryWriter delta_writer;
  EncodeDelta(delta, delta_writer);
  BinaryReader reader = BinaryReader::View(std::string_view(
      delta_writer.buffer().data(), delta_writer.buffer().size() - 5));
  SparseRoundDelta decoded;
  EXPECT_EQ(DecodeDelta(reader, decoded).code(), StatusCode::kCorruption);
}

TEST(WireFailureTest, ForeignMagicFails) {
  const SparseRoundDelta delta = MakeDelta(3, {1}, 7);
  BinaryWriter writer;
  EncodeDelta(delta, writer);
  // A delta message is not an upload message, and vice versa.
  BinaryReader as_upload = BinaryReader::View(writer.buffer());
  SparseRowMatrix upload_out;
  Result<std::uint64_t> upload_result = DecodeUpload(as_upload, upload_out);
  ASSERT_FALSE(upload_result.ok());
  EXPECT_EQ(upload_result.status().code(), StatusCode::kCorruption);

  BinaryWriter garbage;
  garbage.WriteU32(0x12345678);
  garbage.WriteU32(1);
  BinaryReader reader = BinaryReader::View(garbage.buffer());
  SparseRoundDelta delta_out;
  EXPECT_EQ(DecodeDelta(reader, delta_out).code(), StatusCode::kCorruption);
}

TEST(WireFailureTest, UnknownVersionFails) {
  // Hand-build a version-3 upload header; the decoder must refuse before
  // touching the payload.
  BinaryWriter writer;
  writer.WriteU32(0x55575246);  // "FRWU"
  writer.WriteU32(3);           // unsupported version
  writer.WriteU64(0);           // source
  writer.WriteU64(3);           // cols
  writer.WriteU64(0);           // rows
  writer.WriteU32(Crc32(0, nullptr, 0));
  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  Result<std::uint64_t> result = DecodeUpload(reader, decoded);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("version"), std::string::npos);
}

TEST(WireFailureTest, ChecksumCorruptionFailsBeforeParsing) {
  const SparseRowMatrix upload = MakeUpload(4, {5, 9}, 8);
  BinaryWriter writer;
  EncodeUpload(upload, 1, writer);
  std::string corrupted = writer.buffer();
  corrupted[corrupted.size() - 10] ^= 0x40;  // flip one payload bit
  BinaryReader reader = BinaryReader::View(corrupted);
  SparseRowMatrix decoded;
  Result<std::uint64_t> result = DecodeUpload(reader, decoded);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);
}

TEST(WireFailureTest, DuplicateUploadRowFails) {
  // Hand-build a payload repeating row 4 with a VALID checksum: the decoder
  // must reject structure, not just bit flips.
  BinaryWriter payload;
  const float values[2] = {1.0f, 2.0f};
  payload.WriteU64(4);
  payload.WriteF32Array(values);
  payload.WriteU64(4);
  payload.WriteF32Array(values);

  BinaryWriter writer;
  writer.WriteU32(0x55575246);  // "FRWU"
  writer.WriteU32(2);
  writer.WriteU64(9);  // source
  writer.WriteU64(2);  // cols
  writer.WriteU64(2);  // rows
  writer.WriteBytes(payload.buffer().data(), payload.buffer().size());
  // v2 checksum: everything after the version field.
  writer.WriteU32(
      Crc32(0, writer.buffer().data() + 8, writer.buffer().size() - 8));

  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  Result<std::uint64_t> result = DecodeUpload(reader, decoded);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find("duplicate"), std::string::npos);
}

TEST(WireFailureTest, NonAscendingDeltaRowsFail) {
  BinaryWriter payload;
  const float values[2] = {1.0f, 2.0f};
  payload.WriteU64(5);
  payload.WriteF32Array(values);
  payload.WriteU64(3);  // descends
  payload.WriteF32Array(values);

  BinaryWriter writer;
  writer.WriteU32(0x44575246);  // "FRWD"
  writer.WriteU32(2);
  writer.WriteU64(2);  // cols
  writer.WriteU64(2);  // rows
  writer.WriteBytes(payload.buffer().data(), payload.buffer().size());
  // v2 checksum: everything after the version field.
  writer.WriteU32(
      Crc32(0, writer.buffer().data() + 8, writer.buffer().size() - 8));

  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRoundDelta decoded;
  const Status status = DecodeDelta(reader, decoded);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("ascending"), std::string::npos);
}

TEST(WireFailureTest, AbsurdRowCountFailsInsteadOfAllocating) {
  BinaryWriter writer;
  writer.WriteU32(0x55575246);  // "FRWU"
  writer.WriteU32(2);
  writer.WriteU64(0);                        // source
  writer.WriteU64(1u << 20);                 // cols
  writer.WriteU64(0xFFFFFFFFFFFFFFFFull);    // rows: overflow bait
  BinaryReader reader = BinaryReader::View(writer.buffer());
  SparseRowMatrix decoded;
  Result<std::uint64_t> result = DecodeUpload(reader, decoded);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

// --- Exhaustive corruption sweep --------------------------------------------
//
// The fault-tolerance layer's contract is that NO single-byte transit
// corruption can slip through decoding: flip any bit of any byte, or cut the
// buffer at any length, and the decoder must return Status::Corruption — not
// crash, not silently accept (run under asan/ubsan in CI to make "not crash"
// a real check, not a hope).

TEST(WireCorruptionSweepTest, EveryUploadByteFlipFailsWithCorruption) {
  const SparseRowMatrix upload = MakeUpload(5, {4, 19, 33}, 21);
  BinaryWriter writer;
  EncodeUpload(upload, /*source=*/6, writer);
  const std::string& wire = writer.buffer();
  for (std::size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = wire;
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
      BinaryReader reader = BinaryReader::View(corrupted);
      SparseRowMatrix decoded;
      Result<std::uint64_t> result = DecodeUpload(reader, decoded);
      ASSERT_FALSE(result.ok())
          << "flip of byte " << offset << " bit " << bit << " decoded";
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(WireCorruptionSweepTest, EveryUploadTruncationFailsWithCorruption) {
  const SparseRowMatrix upload = MakeUpload(5, {4, 19, 33}, 21);
  BinaryWriter writer;
  EncodeUpload(upload, 6, writer);
  const std::string& wire = writer.buffer();
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    BinaryReader reader =
        BinaryReader::View(std::string_view(wire.data(), keep));
    SparseRowMatrix decoded;
    Result<std::uint64_t> result = DecodeUpload(reader, decoded);
    ASSERT_FALSE(result.ok()) << "prefix " << keep << " decoded";
    EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  }
}

TEST(WireCorruptionSweepTest, EveryDeltaByteFlipFailsWithCorruption) {
  const SparseRoundDelta delta = MakeDelta(5, {2, 8, 40}, 22);
  BinaryWriter writer;
  EncodeDelta(delta, writer);
  const std::string& wire = writer.buffer();
  for (std::size_t offset = 0; offset < wire.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = wire;
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
      BinaryReader reader = BinaryReader::View(corrupted);
      SparseRoundDelta decoded;
      const Status status = DecodeDelta(reader, decoded);
      ASSERT_FALSE(status.ok())
          << "flip of byte " << offset << " bit " << bit << " decoded";
      EXPECT_EQ(status.code(), StatusCode::kCorruption);
    }
  }
}

TEST(WireCorruptionSweepTest, EveryDeltaTruncationFailsWithCorruption) {
  const SparseRoundDelta delta = MakeDelta(5, {2, 8, 40}, 22);
  BinaryWriter writer;
  EncodeDelta(delta, writer);
  const std::string& wire = writer.buffer();
  for (std::size_t keep = 0; keep < wire.size(); ++keep) {
    BinaryReader reader =
        BinaryReader::View(std::string_view(wire.data(), keep));
    SparseRoundDelta decoded;
    const Status status = DecodeDelta(reader, decoded);
    ASSERT_FALSE(status.ok()) << "prefix " << keep << " decoded";
    EXPECT_EQ(status.code(), StatusCode::kCorruption);
  }
}

TEST(WireSteadyStateTest, WarmEncodeDecodeLoopIsAllocationFree) {
  const SparseRowMatrix upload = MakeUpload(8, {3, 17, 44, 90}, 10);
  const SparseRoundDelta delta = MakeDelta(8, {2, 5, 51}, 11);
  BinaryWriter upload_writer;
  BinaryWriter delta_writer;
  SparseRowMatrix upload_out;
  SparseRoundDelta delta_out;
  for (int warm = 0; warm < 3; ++warm) {
    upload_writer.Clear();
    delta_writer.Clear();
    EncodeUpload(upload, 1, upload_writer);
    EncodeDelta(delta, delta_writer);
    BinaryReader upload_reader = BinaryReader::View(upload_writer.buffer());
    ASSERT_TRUE(DecodeUpload(upload_reader, upload_out).ok());
    BinaryReader delta_reader = BinaryReader::View(delta_writer.buffer());
    ASSERT_TRUE(DecodeDelta(delta_reader, delta_out).ok());
  }
  ResetSparseAllocationCount();
  for (int round = 0; round < 50; ++round) {
    upload_writer.Clear();
    delta_writer.Clear();
    EncodeUpload(upload, 1, upload_writer);
    EncodeDelta(delta, delta_writer);
    BinaryReader upload_reader = BinaryReader::View(upload_writer.buffer());
    ASSERT_TRUE(DecodeUpload(upload_reader, upload_out).ok());
    BinaryReader delta_reader = BinaryReader::View(delta_writer.buffer());
    ASSERT_TRUE(DecodeDelta(delta_reader, delta_out).ok());
  }
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

}  // namespace
}  // namespace fedrec
