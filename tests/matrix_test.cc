#include "common/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"

namespace fedrec {
namespace {

TEST(MatrixTest, ConstructionAndShape) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_FALSE(m.empty());
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(m.At(i, j), 0.0f);
  }
  Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(MatrixTest, RowViewsAliasStorage) {
  Matrix m(2, 3);
  auto row = m.Row(1);
  row[2] = 5.0f;
  EXPECT_FLOAT_EQ(m.At(1, 2), 5.0f);
  const Matrix& cm = m;
  EXPECT_FLOAT_EQ(cm.Row(1)[2], 5.0f);
}

TEST(MatrixTest, FillAndFrobenius) {
  Matrix m(2, 2);
  m.Fill(2.0f);
  EXPECT_FLOAT_EQ(m.FrobeniusNorm(), 4.0f);  // sqrt(4 * 4)
}

TEST(MatrixTest, FillGaussianStatistics) {
  Rng rng(5);
  Matrix m(100, 100);
  m.FillGaussian(rng, 1.0f, 2.0f);
  double sum = 0.0, sum2 = 0.0;
  for (float v : m.Data()) {
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double n = 10000.0;
  const double mean = sum / n;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(sum2 / n - mean * mean, 4.0, 0.3);
}

TEST(MatrixTest, FillUniformRange) {
  Rng rng(6);
  Matrix m(50, 50);
  m.FillUniform(rng, -2.0f, 3.0f);
  for (float v : m.Data()) {
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(MatrixTest, AddScaled) {
  Matrix a(2, 2), b(2, 2);
  a.Fill(1.0f);
  b.Fill(3.0f);
  a.Add(b, -0.5f);
  for (float v : a.Data()) EXPECT_FLOAT_EQ(v, -0.5f);
}

TEST(MatrixTest, AddShapeMismatchAborts) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_DEATH(a.Add(b), "");
}

TEST(MatrixTest, CountNonZeroRows) {
  Matrix m(4, 3);
  EXPECT_EQ(m.CountNonZeroRows(), 0u);
  m.At(1, 2) = 0.1f;
  m.At(3, 0) = -0.1f;
  EXPECT_EQ(m.CountNonZeroRows(), 2u);
}

TEST(MatrixTest, Equality) {
  Matrix a(2, 2), b(2, 2);
  EXPECT_TRUE(a == b);
  b.At(0, 0) = 1.0f;
  EXPECT_FALSE(a == b);
}

TEST(SparseRowMatrixTest, RowCreationAndLookup) {
  SparseRowMatrix s(3);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(5));
  auto row = s.RowMutable(5);
  row[0] = 1.0f;
  EXPECT_TRUE(s.Contains(5));
  EXPECT_EQ(s.row_count(), 1u);
  EXPECT_FLOAT_EQ(s.Row(5)[0], 1.0f);
  // Re-fetching does not duplicate.
  s.RowMutable(5)[1] = 2.0f;
  EXPECT_EQ(s.row_count(), 1u);
  EXPECT_FLOAT_EQ(s.Row(5)[1], 2.0f);
}

TEST(SparseRowMatrixTest, AbsentRowAborts) {
  SparseRowMatrix s(2);
  s.RowMutable(1);
  EXPECT_DEATH(s.Row(2), "absent");
}

TEST(SparseRowMatrixTest, ManyRowsOutOfOrder) {
  SparseRowMatrix s(2);
  for (std::size_t r : {9u, 1u, 5u, 3u, 7u}) {
    s.RowMutable(r)[0] = static_cast<float>(r);
  }
  EXPECT_EQ(s.row_count(), 5u);
  for (std::size_t r : {9u, 1u, 5u, 3u, 7u}) {
    EXPECT_FLOAT_EQ(s.Row(r)[0], static_cast<float>(r));
  }
  EXPECT_FALSE(s.Contains(2));
}

TEST(SparseRowMatrixTest, AddToAccumulates) {
  SparseRowMatrix s(2);
  s.RowMutable(0)[0] = 1.0f;
  s.RowMutable(2)[1] = 4.0f;
  Matrix target(3, 2);
  target.Fill(1.0f);
  s.AddTo(target, 2.0f);
  EXPECT_FLOAT_EQ(target.At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(target.At(2, 1), 9.0f);
  EXPECT_FLOAT_EQ(target.At(1, 0), 1.0f);  // untouched row
}

TEST(SparseRowMatrixTest, ClipRowsEnforcesBound) {
  SparseRowMatrix s(2);
  s.RowMutable(0)[0] = 3.0f;
  s.RowMutable(0)[1] = 4.0f;  // norm 5
  s.RowMutable(1)[0] = 0.1f;  // norm 0.1
  s.ClipRows(1.0f);
  EXPECT_NEAR(L2Norm(s.Row(0)), 1.0f, 1e-5f);
  EXPECT_FLOAT_EQ(s.Row(1)[0], 0.1f);
  EXPECT_FLOAT_EQ(s.MaxRowNorm(), 1.0f);
}

TEST(SparseRowMatrixTest, GaussianNoiseChangesValues) {
  SparseRowMatrix s(8);
  s.RowMutable(0);
  Rng rng(9);
  s.AddGaussianNoise(rng, 1.0f);
  EXPECT_GT(L2Norm(s.Row(0)), 0.0f);
  // stddev 0 is a no-op.
  SparseRowMatrix t(8);
  t.RowMutable(0);
  t.AddGaussianNoise(rng, 0.0f);
  EXPECT_FLOAT_EQ(L2Norm(t.Row(0)), 0.0f);
}

TEST(SparseRowMatrixTest, CountNonZeroRowsIgnoresZeroRows) {
  SparseRowMatrix s(2);
  s.RowMutable(0);           // stays zero
  s.RowMutable(1)[0] = 1.0f; // nonzero
  EXPECT_EQ(s.row_count(), 2u);
  EXPECT_EQ(s.CountNonZeroRows(), 1u);
}

TEST(SparseRowMatrixTest, ClearResets) {
  SparseRowMatrix s(2);
  s.RowMutable(3)[0] = 1.0f;
  s.Clear();
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.Contains(3));
  EXPECT_EQ(s.cols(), 2u);
}

TEST(SparseRowMatrixTest, AddToOutOfRangeRowAborts) {
  SparseRowMatrix s(2);
  s.RowMutable(10)[0] = 1.0f;
  Matrix small(5, 2);
  EXPECT_DEATH(s.AddTo(small), "");
}

TEST(SparseRowMatrixTest, ResetKeepsCapacityAndChangesCols) {
  SparseRowMatrix s(3);
  s.RowMutable(4)[0] = 1.0f;
  s.RowMutable(9)[1] = 2.0f;
  s.Reset(5);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.cols(), 5u);
  EXPECT_FALSE(s.Contains(4));
  EXPECT_EQ(s.RowMutable(4).size(), 5u);
}

TEST(SparseAllocationCounterTest, RowMatrixGrowthCountedReuseFree) {
  SparseRowMatrix s(4);
  ResetSparseAllocationCount();
  s.RowMutable(7)[0] = 1.0f;
  s.RowMutable(2)[0] = 2.0f;
  EXPECT_GT(SparseAllocationCount(), 0u);
  // Same-shaped refill after Reset: served entirely from retained capacity.
  s.Reset(4);
  ResetSparseAllocationCount();
  s.RowMutable(7)[0] = 3.0f;
  s.RowMutable(2)[0] = 4.0f;
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

TEST(SparseAllocationCounterTest, DeltaGrowthCountedReuseFree) {
  SparseRoundDelta delta;
  delta.Reset(3);
  ResetSparseAllocationCount();
  delta.AppendRow(1);
  delta.AppendRow(5);
  EXPECT_GT(SparseAllocationCount(), 0u);
  delta.Reset(3);
  ResetSparseAllocationCount();
  delta.AppendRow(0);
  delta.AppendRow(9);
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

}  // namespace
}  // namespace fedrec
