#include "fed/aggregator.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

ClientUpdate MakeUpdate(std::uint32_t user, std::size_t dim,
                        std::vector<std::pair<std::size_t, float>> entries) {
  ClientUpdate update;
  update.user = user;
  update.item_gradients = SparseRowMatrix(dim);
  for (const auto& [row, value] : entries) {
    update.item_gradients.RowMutable(row)[0] = value;
  }
  return update;
}

TEST(AggregatorTest, SumMatchesPaperProtocol) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kSum;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 2, {{0, 1.0f}, {1, 2.0f}}));
  updates.push_back(MakeUpdate(1, 2, {{0, 3.0f}}));
  const Matrix total = AggregateUpdates(updates, 3, 2, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(total.At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(total.At(2, 0), 0.0f);
}

TEST(AggregatorTest, EmptyUpdatesYieldZeroGradient) {
  AggregatorOptions options;
  const Matrix total = AggregateUpdates({}, 4, 3, options);
  EXPECT_FLOAT_EQ(total.FrobeniusNorm(), 0.0f);
  EXPECT_EQ(total.rows(), 4u);
}

TEST(AggregatorTest, SumIsPermutationInvariant) {
  AggregatorOptions options;
  std::vector<ClientUpdate> a;
  a.push_back(MakeUpdate(0, 2, {{0, 1.0f}}));
  a.push_back(MakeUpdate(1, 2, {{0, 2.0f}, {1, -1.0f}}));
  a.push_back(MakeUpdate(2, 2, {{1, 5.0f}}));
  std::vector<ClientUpdate> b;
  b.push_back(MakeUpdate(2, 2, {{1, 5.0f}}));
  b.push_back(MakeUpdate(0, 2, {{0, 1.0f}}));
  b.push_back(MakeUpdate(1, 2, {{0, 2.0f}, {1, -1.0f}}));
  EXPECT_TRUE(AggregateUpdates(a, 2, 2, options) ==
              AggregateUpdates(b, 2, 2, options));
}

TEST(AggregatorTest, MedianResistsOneOutlier) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kMedian;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.2f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 100.0f}}));  // attacker
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  // median(1, 1.2, 100) = 1.2, rescaled by 3 contributors.
  EXPECT_FLOAT_EQ(total.At(0, 0), 3.0f * 1.2f);
}

TEST(AggregatorTest, MedianEvenCountAverageOfMiddle) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kMedian;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 2.0f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 3.0f}}));
  updates.push_back(MakeUpdate(3, 1, {{0, 4.0f}}));
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 4.0f * 2.5f);
}

TEST(AggregatorTest, TrimmedMeanDropsTails) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kTrimmedMean;
  options.trim_fraction = 0.25;  // drop 1 from each side of 5
  std::vector<ClientUpdate> updates;
  for (int i = 0; i < 4; ++i) {
    updates.push_back(
        MakeUpdate(static_cast<std::uint32_t>(i), 1, {{0, 1.0f}}));
  }
  updates.push_back(MakeUpdate(4, 1, {{0, 1000.0f}}));  // outlier trimmed away
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  // Sorted {1,1,1,1,1000}, trim 1 each side -> mean(1,1,1) = 1, x5 contributors.
  EXPECT_FLOAT_EQ(total.At(0, 0), 5.0f);
}

TEST(AggregatorTest, TrimmedMeanOnlyOverContributors) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kTrimmedMean;
  options.trim_fraction = 0.0;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 2.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{1, 6.0f}}));  // different row
  const Matrix total = AggregateUpdates(updates, 2, 1, options);
  // Each row has exactly one contributor: robust mean = value, x1.
  EXPECT_FLOAT_EQ(total.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(total.At(1, 0), 6.0f);
}

TEST(AggregatorTest, NormBoundRescalesLargeRows) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kNormBound;
  options.norm_bound = 1.0;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 10.0f}}));  // norm 10 -> rescaled to 1
  updates.push_back(MakeUpdate(1, 1, {{0, 0.5f}}));   // within bound
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_NEAR(total.At(0, 0), 1.5f, 1e-5f);
}

TEST(KrumTest, SelectsClusterMemberNotOutlier) {
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.00f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.01f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 0.99f}}));
  updates.push_back(MakeUpdate(3, 1, {{0, 50.0f}}));  // attacker
  const std::size_t pick = KrumSelect(updates, 1, 1, /*honest=*/3);
  EXPECT_NE(pick, 3u);
}

TEST(KrumTest, SingleUpdateSelected) {
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 5.0f}}));
  EXPECT_EQ(KrumSelect(updates, 1, 1, 1), 0u);
}

TEST(KrumTest, DisjointRowsUseZeroPadding) {
  // Two identical small updates on row 0, one large on row 1: distance
  // between the small pair is 0; the large one is far from both.
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 0.1f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 0.1f}}));
  updates.push_back(MakeUpdate(2, 1, {{1, 30.0f}}));
  const std::size_t pick = KrumSelect(updates, 2, 1, 3);
  EXPECT_NE(pick, 2u);
}

TEST(KrumTest, AggregateScalesSelectedByRoundSize) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kKrum;
  options.krum_honest = 3;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 1.0f}}));
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 3.0f);
}

TEST(AggregatorKindTest, NamesRoundTrip) {
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kSum), "sum");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kMedian), "median");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kTrimmedMean),
               "trimmed-mean");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kNormBound), "norm-bound");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kKrum), "krum");
}

}  // namespace
}  // namespace fedrec
