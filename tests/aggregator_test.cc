#include "fed/aggregator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/threadpool.h"

namespace fedrec {
namespace {

ClientUpdate MakeUpdate(std::uint32_t user, std::size_t dim,
                        std::vector<std::pair<std::size_t, float>> entries) {
  ClientUpdate update;
  update.user = user;
  update.item_gradients = SparseRowMatrix(dim);
  for (const auto& [row, value] : entries) {
    update.item_gradients.RowMutable(row)[0] = value;
  }
  return update;
}

TEST(AggregatorTest, SumMatchesPaperProtocol) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kSum;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 2, {{0, 1.0f}, {1, 2.0f}}));
  updates.push_back(MakeUpdate(1, 2, {{0, 3.0f}}));
  const Matrix total = AggregateUpdates(updates, 3, 2, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 4.0f);
  EXPECT_FLOAT_EQ(total.At(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(total.At(2, 0), 0.0f);
}

TEST(AggregatorTest, EmptyUpdatesYieldZeroGradient) {
  AggregatorOptions options;
  const Matrix total = AggregateUpdates({}, 4, 3, options);
  EXPECT_FLOAT_EQ(total.FrobeniusNorm(), 0.0f);
  EXPECT_EQ(total.rows(), 4u);
}

TEST(AggregatorTest, SumIsPermutationInvariant) {
  AggregatorOptions options;
  std::vector<ClientUpdate> a;
  a.push_back(MakeUpdate(0, 2, {{0, 1.0f}}));
  a.push_back(MakeUpdate(1, 2, {{0, 2.0f}, {1, -1.0f}}));
  a.push_back(MakeUpdate(2, 2, {{1, 5.0f}}));
  std::vector<ClientUpdate> b;
  b.push_back(MakeUpdate(2, 2, {{1, 5.0f}}));
  b.push_back(MakeUpdate(0, 2, {{0, 1.0f}}));
  b.push_back(MakeUpdate(1, 2, {{0, 2.0f}, {1, -1.0f}}));
  EXPECT_TRUE(AggregateUpdates(a, 2, 2, options) ==
              AggregateUpdates(b, 2, 2, options));
}

TEST(AggregatorTest, MedianResistsOneOutlier) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kMedian;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.2f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 100.0f}}));  // attacker
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  // median(1, 1.2, 100) = 1.2, rescaled by 3 contributors.
  EXPECT_FLOAT_EQ(total.At(0, 0), 3.0f * 1.2f);
}

TEST(AggregatorTest, MedianEvenCountAverageOfMiddle) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kMedian;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 2.0f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 3.0f}}));
  updates.push_back(MakeUpdate(3, 1, {{0, 4.0f}}));
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 4.0f * 2.5f);
}

TEST(AggregatorTest, TrimmedMeanDropsTails) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kTrimmedMean;
  options.trim_fraction = 0.25;  // drop 1 from each side of 5
  std::vector<ClientUpdate> updates;
  for (int i = 0; i < 4; ++i) {
    updates.push_back(
        MakeUpdate(static_cast<std::uint32_t>(i), 1, {{0, 1.0f}}));
  }
  updates.push_back(MakeUpdate(4, 1, {{0, 1000.0f}}));  // outlier trimmed away
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  // Sorted {1,1,1,1,1000}, trim 1 each side -> mean(1,1,1) = 1, x5 contributors.
  EXPECT_FLOAT_EQ(total.At(0, 0), 5.0f);
}

TEST(AggregatorTest, TrimmedMeanOnlyOverContributors) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kTrimmedMean;
  options.trim_fraction = 0.0;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 2.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{1, 6.0f}}));  // different row
  const Matrix total = AggregateUpdates(updates, 2, 1, options);
  // Each row has exactly one contributor: robust mean = value, x1.
  EXPECT_FLOAT_EQ(total.At(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(total.At(1, 0), 6.0f);
}

TEST(AggregatorTest, NormBoundRescalesLargeRows) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kNormBound;
  options.norm_bound = 1.0;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 10.0f}}));  // norm 10 -> rescaled to 1
  updates.push_back(MakeUpdate(1, 1, {{0, 0.5f}}));   // within bound
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_NEAR(total.At(0, 0), 1.5f, 1e-5f);
}

std::vector<ClientUpdate> RandomRoundUpdates(std::size_t clients,
                                             std::size_t num_items,
                                             std::size_t dim, std::size_t rows,
                                             std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientUpdate> updates;
  updates.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    ClientUpdate update;
    update.user = static_cast<std::uint32_t>(c);
    update.item_gradients = SparseRowMatrix(dim);
    for (std::size_t r = 0; r < rows; ++r) {
      auto row = update.item_gradients.RowMutable(rng.NextBounded(num_items));
      for (auto& v : row) v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

void ExpectDeltasBitIdentical(const SparseRoundDelta& expected,
                              const SparseRoundDelta& actual,
                              const std::string& label) {
  ASSERT_EQ(expected.row_count(), actual.row_count()) << label;
  ASSERT_EQ(expected.cols(), actual.cols()) << label;
  for (std::size_t slot = 0; slot < expected.row_count(); ++slot) {
    ASSERT_EQ(expected.rows()[slot], actual.rows()[slot]) << label;
    const auto want = expected.RowAtSlot(slot);
    const auto got = actual.RowAtSlot(slot);
    for (std::size_t d = 0; d < want.size(); ++d) {
      ASSERT_EQ(want[d], got[d])
          << label << " row " << expected.rows()[slot] << " dim " << d;
    }
  }
}

TEST(ShardedAggregationTest, BitIdenticalToSerialForAllRulesAndShardCounts) {
  ThreadPool pool(4);
  const std::size_t dim = 7;
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kTrimmedMean,
        AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    for (std::uint64_t seed : {1u, 2u}) {
      const auto updates = RandomRoundUpdates(23, 60, dim, 9, seed);
      AggregatorOptions options;
      options.kind = kind;
      options.krum_honest = 15;

      AggregationWorkspace serial_workspace;
      SparseRoundDelta serial;
      AggregateUpdates(updates, dim, options, serial_workspace, serial);

      for (const std::size_t shards : {std::size_t{1}, std::size_t{3},
                                       pool.thread_count()}) {
        AggregationWorkspace workspace;
        SparseRoundDelta delta;
        AggregateUpdates(updates, dim, options, workspace, delta, &pool,
                         shards);
        ExpectDeltasBitIdentical(
            serial, delta,
            std::string(AggregatorKindToString(kind)) + " shards=" +
                std::to_string(shards) + " seed=" + std::to_string(seed));
      }
    }
  }
}

TEST(ShardedAggregationTest, ShardPartitionWithoutPoolRunsInline) {
  // num_shards > 1 with a null pool must partition identically and execute
  // the shards on the calling thread.
  const std::size_t dim = 5;
  const auto updates = RandomRoundUpdates(11, 40, dim, 6, 4);
  AggregatorOptions options;
  AggregationWorkspace serial_workspace;
  SparseRoundDelta serial;
  AggregateUpdates(updates, dim, options, serial_workspace, serial);

  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, dim, options, workspace, delta, nullptr,
                   /*num_shards=*/3);
  ExpectDeltasBitIdentical(serial, delta, "inline shards");
}

TEST(ShardedAggregationTest, ReusedWorkspaceIsAllocationFreeAcrossRounds) {
  ThreadPool pool(3);
  const std::size_t dim = 6;
  AggregatorOptions options;
  options.kind = AggregatorKind::kMedian;
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  std::vector<std::vector<ClientUpdate>> rounds;
  for (std::uint64_t seed = 8; seed < 12; ++seed) {
    rounds.push_back(RandomRoundUpdates(16, 50, dim, 8, seed));
  }
  // Warm pass: grows every buffer to the rounds' watermark.
  for (const auto& updates : rounds) {
    AggregateUpdates(updates, dim, options, workspace, delta, &pool);
  }
  ResetSparseAllocationCount();
  for (const auto& updates : rounds) {
    AggregateUpdates(updates, dim, options, workspace, delta, &pool);
  }
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

TEST(KrumTest, SelectsClusterMemberNotOutlier) {
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.00f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.01f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 0.99f}}));
  updates.push_back(MakeUpdate(3, 1, {{0, 50.0f}}));  // attacker
  const std::size_t pick = KrumSelect(updates, 1, 1, /*honest=*/3);
  EXPECT_NE(pick, 3u);
}

TEST(KrumTest, SingleUpdateSelected) {
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 5.0f}}));
  EXPECT_EQ(KrumSelect(updates, 1, 1, 1), 0u);
}

TEST(KrumTest, DisjointRowsUseZeroPadding) {
  // Two identical small updates on row 0, one large on row 1: distance
  // between the small pair is 0; the large one is far from both.
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 0.1f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 0.1f}}));
  updates.push_back(MakeUpdate(2, 1, {{1, 30.0f}}));
  const std::size_t pick = KrumSelect(updates, 2, 1, 3);
  EXPECT_NE(pick, 2u);
}

TEST(KrumTest, AggregateScalesSelectedByRoundSize) {
  AggregatorOptions options;
  options.kind = AggregatorKind::kKrum;
  options.krum_honest = 3;
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(0, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(1, 1, {{0, 1.0f}}));
  updates.push_back(MakeUpdate(2, 1, {{0, 1.0f}}));
  const Matrix total = AggregateUpdates(updates, 1, 1, options);
  EXPECT_FLOAT_EQ(total.At(0, 0), 3.0f);
}

// --- Bit-identity regression against the historical implementation ---------
//
// The production median/trimmed-mean path was rewritten from a
// std::map-grouped, full-sort-per-coordinate implementation to a flat
// row-index + nth_element one. The rewrite must be bit-identical, so the
// reference below reimplements the historical algorithm verbatim.
Matrix ReferenceCoordinateWise(const std::vector<ClientUpdate>& updates,
                               std::size_t num_items, std::size_t dim,
                               bool median, double trim_fraction) {
  Matrix total(num_items, dim);
  std::map<std::size_t, std::vector<const ClientUpdate*>> by_row;
  for (const ClientUpdate& update : updates) {
    for (std::size_t row : update.item_gradients.row_ids()) {
      by_row[row].push_back(&update);
    }
  }
  std::vector<float> column;
  for (const auto& [row, contributors] : by_row) {
    const std::size_t n = contributors.size();
    auto out = total.Row(row);
    for (std::size_t d = 0; d < dim; ++d) {
      column.clear();
      for (const ClientUpdate* update : contributors) {
        column.push_back(update->item_gradients.Row(row)[d]);
      }
      std::sort(column.begin(), column.end());
      double robust = 0.0;
      if (median) {
        robust = (column.size() % 2 == 1)
                     ? column[column.size() / 2]
                     : 0.5 * (column[column.size() / 2 - 1] +
                              column[column.size() / 2]);
      } else {
        std::size_t trim = static_cast<std::size_t>(
            std::floor(trim_fraction * static_cast<double>(column.size())));
        if (2 * trim >= column.size()) trim = (column.size() - 1) / 2;
        double sum = 0.0;
        std::size_t kept = 0;
        for (std::size_t i = trim; i + trim < column.size(); ++i) {
          sum += column[i];
          ++kept;
        }
        robust = kept == 0 ? 0.0 : sum / static_cast<double>(kept);
      }
      out[d] = static_cast<float>(robust * static_cast<double>(n));
    }
  }
  return total;
}

std::vector<ClientUpdate> RandomUpdates(std::size_t num_clients,
                                        std::size_t num_items, std::size_t dim,
                                        std::size_t rows_per_client,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientUpdate> updates;
  updates.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    ClientUpdate update;
    update.user = static_cast<std::uint32_t>(c);
    update.item_gradients = SparseRowMatrix(dim);
    for (std::size_t r = 0; r < rows_per_client; ++r) {
      auto row = update.item_gradients.RowMutable(rng.NextBounded(num_items));
      for (auto& v : row) v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

TEST(AggregatorBitIdentityTest, MedianMatchesSortedColumnReference) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto updates = RandomUpdates(17, 40, 5, 12, seed);
    AggregatorOptions options;
    options.kind = AggregatorKind::kMedian;
    const Matrix actual = AggregateUpdates(updates, 40, 5, options);
    const Matrix expected =
        ReferenceCoordinateWise(updates, 40, 5, /*median=*/true, 0.0);
    EXPECT_TRUE(actual == expected) << "seed=" << seed;
  }
}

TEST(AggregatorBitIdentityTest, TrimmedMeanMatchesSortedColumnReference) {
  for (double trim_fraction : {0.0, 0.1, 0.25, 0.45}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const auto updates = RandomUpdates(16, 30, 4, 10, seed);
      AggregatorOptions options;
      options.kind = AggregatorKind::kTrimmedMean;
      options.trim_fraction = trim_fraction;
      const Matrix actual = AggregateUpdates(updates, 30, 4, options);
      const Matrix expected = ReferenceCoordinateWise(
          updates, 30, 4, /*median=*/false, trim_fraction);
      EXPECT_TRUE(actual == expected)
          << "seed=" << seed << " trim=" << trim_fraction;
    }
  }
}

TEST(AggregatorBitIdentityTest, SingleContributorRowsPassThrough) {
  // Degenerate columns (one contributor) exercise the trim-clamp and the
  // even/odd median edges of both implementations.
  const auto updates = RandomUpdates(2, 100, 3, 4, 9);
  for (const bool median : {true, false}) {
    AggregatorOptions options;
    options.kind =
        median ? AggregatorKind::kMedian : AggregatorKind::kTrimmedMean;
    const Matrix actual = AggregateUpdates(updates, 100, 3, options);
    const Matrix expected = ReferenceCoordinateWise(updates, 100, 3, median,
                                                    options.trim_fraction);
    EXPECT_TRUE(actual == expected);
  }
}

TEST(KrumTest, NormTableRewriteAgreesWithDirectDistances) {
  // KrumSelect now expands ||a-b||^2 via precomputed row-norm tables; it must
  // pick the same client as the direct per-pair reduction over the row union.
  for (std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const auto updates = RandomUpdates(12, 25, 6, 8, seed);
    const std::size_t dim = 6;
    const std::size_t n = updates.size();
    auto direct_distance2 = [&](const ClientUpdate& a, const ClientUpdate& b) {
      double acc = 0.0;
      for (std::size_t row : a.item_gradients.row_ids()) {
        const auto ra = a.item_gradients.Row(row);
        if (b.item_gradients.Contains(row)) {
          const auto rb = b.item_gradients.Row(row);
          for (std::size_t d = 0; d < dim; ++d) {
            const double diff = static_cast<double>(ra[d]) - rb[d];
            acc += diff * diff;
          }
        } else {
          for (float v : ra) acc += static_cast<double>(v) * v;
        }
      }
      for (std::size_t row : b.item_gradients.row_ids()) {
        if (!a.item_gradients.Contains(row)) {
          const auto rb = b.item_gradients.Row(row);
          for (float v : rb) acc += static_cast<double>(v) * v;
        }
      }
      return acc;
    };
    const std::size_t honest = 8;
    // Reference selection: historical direct distances + neighbour scoring.
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        dist[i][j] = dist[j][i] = direct_distance2(updates[i], updates[j]);
      }
    }
    const std::size_t neighbours = honest - 2;
    std::size_t best = 0;
    double best_score = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      std::vector<double> row;
      for (std::size_t j = 0; j < n; ++j) {
        if (j != i) row.push_back(dist[i][j]);
      }
      std::sort(row.begin(), row.end());
      double score = 0.0;
      for (std::size_t r = 0; r < neighbours && r < row.size(); ++r) {
        score += row[r];
      }
      if (score < best_score) {
        best_score = score;
        best = i;
      }
    }
    EXPECT_EQ(KrumSelect(updates, 25, dim, honest), best) << "seed=" << seed;
  }
}

TEST(AggregatorKindTest, NamesRoundTrip) {
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kSum), "sum");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kMedian), "median");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kTrimmedMean),
               "trimmed-mean");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kNormBound), "norm-bound");
  EXPECT_STREQ(AggregatorKindToString(AggregatorKind::kKrum), "krum");
}


TEST(AggregatorTest, EveryRuleAggregatesAnEmptyRoundCleanly) {
  // Under fault injection with min_round_quorum = 0, an all-dropped round
  // legally reaches the aggregator with zero uploads. Every rule must
  // produce a clean empty delta (column count set, no rows) instead of
  // tripping over the empty contributor index.
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kTrimmedMean,
        AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    AggregatorOptions options;
    options.kind = kind;
    options.krum_honest = 1;
    AggregationWorkspace workspace;
    SparseRoundDelta delta;
    AggregateUpdates(std::span<const ClientUpdate>{}, /*dim=*/3, options,
                     workspace, delta);
    EXPECT_TRUE(delta.empty()) << AggregatorKindToString(kind);
    EXPECT_EQ(delta.cols(), 3u) << AggregatorKindToString(kind);
    EXPECT_EQ(delta.row_count(), 0u) << AggregatorKindToString(kind);
  }
}

}  // namespace
}  // namespace fedrec
