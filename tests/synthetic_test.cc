#include "data/synthetic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/stats.h"

namespace fedrec {
namespace {

TEST(SyntheticTest, RespectsConfiguredShape) {
  SyntheticConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.mean_interactions_per_user = 20.0;
  config.seed = 1;
  const Dataset ds = GenerateSynthetic(config);
  EXPECT_EQ(ds.num_users(), 200u);
  EXPECT_EQ(ds.num_items(), 300u);
  // Mean activity within 25% of target.
  EXPECT_NEAR(ds.AverageInteractionsPerUser(), 20.0, 5.0);
}

TEST(SyntheticTest, EveryUserHasAtLeastTwoInteractions) {
  SyntheticConfig config;
  config.num_users = 150;
  config.num_items = 100;
  config.mean_interactions_per_user = 4.0;
  config.activity_sigma = 1.2;  // heavy tail -> many low-activity draws
  config.seed = 2;
  const Dataset ds = GenerateSynthetic(config);
  for (std::size_t u = 0; u < ds.num_users(); ++u) {
    EXPECT_GE(ds.UserItems(u).size(), 2u) << "user " << u;
  }
}

TEST(SyntheticTest, DeterministicPerSeed) {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 80;
  config.seed = 7;
  const Dataset a = GenerateSynthetic(config);
  const Dataset b = GenerateSynthetic(config);
  EXPECT_EQ(a.num_interactions(), b.num_interactions());
  for (std::size_t u = 0; u < a.num_users(); ++u) {
    EXPECT_EQ(a.UserItems(u), b.UserItems(u));
  }
  config.seed = 8;
  const Dataset c = GenerateSynthetic(config);
  bool differs = c.num_interactions() != a.num_interactions();
  for (std::size_t u = 0; !differs && u < a.num_users(); ++u) {
    differs = a.UserItems(u) != c.UserItems(u);
  }
  EXPECT_TRUE(differs);
}

TEST(SyntheticTest, PopularityIsLongTailed) {
  SyntheticConfig config;
  config.num_users = 400;
  config.num_items = 600;
  config.mean_interactions_per_user = 30.0;
  config.seed = 3;
  const Dataset ds = GenerateSynthetic(config);
  const DatasetStats stats = ComputeStats(ds);
  // Zipf-ish data concentrates a large share on the head.
  EXPECT_GT(stats.top10_percent_share, 0.3);
  EXPECT_GT(stats.gini_popularity, 0.4);
}

TEST(SyntheticTest, PresetsMatchTableII) {
  const SyntheticConfig ml100k = MovieLens100KConfig();
  EXPECT_EQ(ml100k.num_users, 943u);
  EXPECT_EQ(ml100k.num_items, 1682u);
  EXPECT_DOUBLE_EQ(ml100k.mean_interactions_per_user, 106.0);

  const SyntheticConfig ml1m = MovieLens1MConfig();
  EXPECT_EQ(ml1m.num_users, 6040u);
  EXPECT_EQ(ml1m.num_items, 3706u);

  const SyntheticConfig steam = Steam200KConfig();
  EXPECT_EQ(steam.num_users, 3753u);
  EXPECT_EQ(steam.num_items, 5134u);
  EXPECT_DOUBLE_EQ(steam.mean_interactions_per_user, 31.0);
}

TEST(SyntheticTest, GenerateByNameKnownPresets) {
  for (const char* name : {"ml-100k", "ml-1m", "steam-200k"}) {
    auto ds = GenerateByName(name, /*seed=*/5, /*scale=*/0.05);
    ASSERT_TRUE(ds.ok()) << name;
    EXPECT_GT(ds.value().num_users(), 0u);
  }
}

TEST(SyntheticTest, GenerateByNameScaleShrinks) {
  auto full = GenerateByName("ml-100k", 5, 1.0);
  auto half = GenerateByName("ml-100k", 5, 0.5);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(full.value().num_users(), 943u);
  EXPECT_NEAR(static_cast<double>(half.value().num_users()), 471.5, 1.0);
  EXPECT_NE(half.value().name().find("@"), std::string::npos);
}

TEST(SyntheticTest, GenerateByNameRejectsBadInput) {
  EXPECT_FALSE(GenerateByName("no-such-dataset", 1).ok());
  EXPECT_FALSE(GenerateByName("ml-100k", 1, 0.0).ok());
  EXPECT_FALSE(GenerateByName("ml-100k", 1, 1.5).ok());
}

TEST(SyntheticTest, PopularHeadDominatesMedianItem) {
  SyntheticConfig config;
  config.num_users = 300;
  config.num_items = 400;
  config.mean_interactions_per_user = 25.0;
  config.seed = 11;
  const Dataset ds = GenerateSynthetic(config);
  const auto pop = ds.ItemPopularity();
  std::vector<std::size_t> sorted = pop;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(sorted.back(), 4 * std::max<std::size_t>(1, sorted[sorted.size() / 2]));
}

}  // namespace
}  // namespace fedrec
