#include "common/flags.h"

#include <gtest/gtest.h>

namespace fedrec {
namespace {

FlagParser Parse(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  FlagParser parser;
  parser.Parse(static_cast<int>(argv.size()), argv.data()).CheckOK();
  return parser;
}

TEST(FlagParserTest, EqualsSyntax) {
  const auto p = Parse({"--epochs=50", "--name=test"});
  EXPECT_EQ(p.GetInt("epochs", 0), 50);
  EXPECT_EQ(p.GetString("name", ""), "test");
}

TEST(FlagParserTest, SpaceSyntax) {
  const auto p = Parse({"--epochs", "50"});
  EXPECT_EQ(p.GetInt("epochs", 0), 50);
}

TEST(FlagParserTest, BareBooleanFlag) {
  const auto p = Parse({"--quick", "--full=false"});
  EXPECT_TRUE(p.GetBool("quick", false));
  EXPECT_FALSE(p.GetBool("full", true));
  EXPECT_TRUE(p.GetBool("absent", true));
  EXPECT_FALSE(p.GetBool("absent", false));
}

TEST(FlagParserTest, BooleanSpellings) {
  EXPECT_TRUE(Parse({"--a=true"}).GetBool("a", false));
  EXPECT_TRUE(Parse({"--a=1"}).GetBool("a", false));
  EXPECT_TRUE(Parse({"--a=yes"}).GetBool("a", false));
  EXPECT_FALSE(Parse({"--a=0"}).GetBool("a", true));
  EXPECT_FALSE(Parse({"--a=no"}).GetBool("a", true));
}

TEST(FlagParserTest, FallbacksWhenAbsent) {
  const auto p = Parse({});
  EXPECT_EQ(p.GetInt("x", 7), 7);
  EXPECT_DOUBLE_EQ(p.GetDouble("y", 0.5), 0.5);
  EXPECT_EQ(p.GetString("z", "dft"), "dft");
  EXPECT_FALSE(p.Has("x"));
}

TEST(FlagParserTest, DoubleParsing) {
  const auto p = Parse({"--rho=0.05"});
  EXPECT_DOUBLE_EQ(p.GetDouble("rho", 0.0), 0.05);
}

TEST(FlagParserTest, DoubleListParsing) {
  const auto p = Parse({"--rho=0.01,0.05,0.1"});
  const auto values = p.GetDoubleList("rho", {});
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 0.01);
  EXPECT_DOUBLE_EQ(values[2], 0.1);
  const auto fallback = p.GetDoubleList("absent", {1.0, 2.0});
  EXPECT_EQ(fallback.size(), 2u);
}

TEST(FlagParserTest, PositionalArguments) {
  const auto p = Parse({"pos1", "--f=1", "pos2"});
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "pos1");
  EXPECT_EQ(p.positional()[1], "pos2");
  EXPECT_EQ(p.program_name(), "prog");
}

TEST(FlagParserTest, MalformedNumberAborts) {
  const auto p = Parse({"--epochs=abc"});
  EXPECT_DEATH(p.GetInt("epochs", 0), "epochs");
  EXPECT_DEATH(p.GetDouble("epochs", 0.0), "epochs");
  EXPECT_DEATH(p.GetBool("epochs", false), "boolean");
}

TEST(FlagParserTest, BareDoubleDashRejected) {
  FlagParser parser;
  const char* argv[] = {"prog", "--"};
  EXPECT_FALSE(parser.Parse(2, argv).ok());
}

TEST(FlagParserTest, NegativeValueViaEquals) {
  const auto p = Parse({"--delta=-3"});
  EXPECT_EQ(p.GetInt("delta", 0), -3);
}

}  // namespace
}  // namespace fedrec
