#include "attack/shilling.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedrec {
namespace {

struct AttackTestSetup {
  Dataset data;
  MfModel model;
  FedConfig fed;
};

AttackTestSetup MakeSetup(std::uint64_t seed) {
  SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 120;
  config.mean_interactions_per_user = 15.0;
  config.seed = seed;
  AttackTestSetup setup{GenerateSynthetic(config), {}, {}};
  setup.fed.model.dim = 6;
  Rng rng(seed + 1);
  setup.model = MfModel(120, setup.fed.model, rng);
  return setup;
}

RoundContext MakeContext(const AttackTestSetup& setup) {
  RoundContext context;
  context.model = &setup.model;
  context.config = &setup.fed;
  context.num_benign_users = setup.data.num_users();
  return context;
}

TEST(ShillingTest, FillerCountFormula) {
  RandomAttack attack({3, 5}, /*kappa=*/20, /*num_items=*/100, 1);
  // floor(20/2) - 2 targets = 8 fillers.
  EXPECT_EQ(attack.filler_count(), 8u);
  RandomAttack tight({3, 5}, /*kappa=*/4, 100, 1);
  EXPECT_EQ(tight.filler_count(), 0u);
}

TEST(ShillingTest, ProfilesContainTargetsAndRespectBudget) {
  AttackTestSetup setup = MakeSetup(10);
  RandomAttack attack({3, 5}, 20, setup.data.num_items(), 2);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t id = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  const auto& profile = attack.ProfileForSlot(0);
  EXPECT_TRUE(std::binary_search(profile.begin(), profile.end(), 3u));
  EXPECT_TRUE(std::binary_search(profile.begin(), profile.end(), 5u));
  EXPECT_LE(profile.size(), 10u);  // floor(kappa/2)
}

TEST(ShillingTest, UploadsLookLikeBenignClients) {
  AttackTestSetup setup = MakeSetup(11);
  RandomAttack attack({3}, 20, setup.data.num_items(), 3);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t id = static_cast<std::uint32_t>(setup.data.num_users());
  const auto updates =
      attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_EQ(updates[0].user, id);
  // Rows bounded by kappa (positives + negatives of the fake profile).
  EXPECT_LE(updates[0].item_gradients.row_count(), 20u);
  EXPECT_LE(updates[0].item_gradients.MaxRowNorm(),
            setup.fed.clip_norm * 1.001f);
  EXPECT_GT(updates[0].item_gradients.CountNonZeroRows(), 0u);
}

TEST(ShillingTest, SameClientKeepsItsProfile) {
  AttackTestSetup setup = MakeSetup(12);
  RandomAttack attack({3}, 20, setup.data.num_items(), 4);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t id = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  const auto profile_first = attack.ProfileForSlot(0);
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  EXPECT_EQ(attack.ProfileForSlot(0), profile_first);
}

TEST(ShillingTest, DistinctClientsGetDistinctRandomProfiles) {
  AttackTestSetup setup = MakeSetup(13);
  RandomAttack attack({3}, 30, setup.data.num_items(), 5);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t base = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{base, base + 1});
  EXPECT_NE(attack.ProfileForSlot(0), attack.ProfileForSlot(1));
}

TEST(ShillingTest, PopularAttackUsesMostPopularItems) {
  AttackTestSetup setup = MakeSetup(14);
  const auto order = setup.data.ItemsByPopularity();
  PopularAttack attack({order.back()}, 12, order, 6);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t id = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  const auto& profile = attack.ProfileForSlot(0);
  // Profile = target + the 5 most popular items.
  std::set<std::uint32_t> expected(order.begin(), order.begin() + 5);
  expected.insert(order.back());
  const std::set<std::uint32_t> actual(profile.begin(), profile.end());
  EXPECT_EQ(actual, expected);
}

TEST(ShillingTest, PopularProfilesIdenticalAcrossClients) {
  AttackTestSetup setup = MakeSetup(15);
  const auto order = setup.data.ItemsByPopularity();
  PopularAttack attack({order.back()}, 16, order, 7);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t base = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{base, base + 1});
  EXPECT_EQ(attack.ProfileForSlot(0), attack.ProfileForSlot(1));
}

TEST(ShillingTest, BandwagonMixesHeadAndTail) {
  AttackTestSetup setup = MakeSetup(16);
  const auto order = setup.data.ItemsByPopularity();
  BandwagonAttack attack({order.back()}, 42, order, 8);
  const RoundContext context = MakeContext(setup);
  const std::uint32_t id = static_cast<std::uint32_t>(setup.data.num_users());
  attack.ProduceUpdates(context, std::vector<std::uint32_t>{id});
  const auto& profile = attack.ProfileForSlot(0);
  // 20 fillers: 2 from the top-10% head, 18 from the tail.
  const std::size_t head_size = order.size() / 10;
  const std::set<std::uint32_t> head(order.begin(),
                                     order.begin() +
                                         static_cast<std::ptrdiff_t>(head_size));
  std::size_t head_hits = 0;
  for (std::uint32_t item : profile) {
    if (head.count(item)) ++head_hits;
  }
  EXPECT_GE(head_hits, 1u);
  EXPECT_LE(head_hits, 6u);  // mostly tail items
  EXPECT_GE(profile.size(), 15u);
}

TEST(ShillingTest, AttackNames) {
  AttackTestSetup setup = MakeSetup(17);
  const auto order = setup.data.ItemsByPopularity();
  EXPECT_EQ(RandomAttack({0}, 10, 50, 1).name(), "random");
  EXPECT_EQ(BandwagonAttack({0}, 10, order, 1).name(), "bandwagon");
  EXPECT_EQ(PopularAttack({0}, 10, order, 1).name(), "popular");
}

TEST(ShillingTest, ProfileForUnknownSlotAborts) {
  RandomAttack attack({0}, 10, 50, 1);
  EXPECT_DEATH(attack.ProfileForSlot(0), "");
}

}  // namespace
}  // namespace fedrec
