#include "fed/round_engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fed/simulation.h"
#include "model/metrics.h"

namespace fedrec {
namespace {

Dataset SmallData(std::uint64_t seed = 1) {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.mean_interactions_per_user = 12.0;
  config.seed = seed;
  return GenerateSynthetic(config);
}

FedConfig SmallConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clients_per_round = 16;
  config.epochs = 4;
  config.seed = 2;
  return config;
}

std::vector<ClientUpdate> RandomUpdates(std::size_t num_clients,
                                        std::size_t num_items, std::size_t dim,
                                        std::size_t rows_per_client,
                                        std::uint64_t seed) {
  Rng rng(seed);
  std::vector<ClientUpdate> updates;
  updates.reserve(num_clients);
  for (std::size_t c = 0; c < num_clients; ++c) {
    ClientUpdate update;
    update.user = static_cast<std::uint32_t>(c);
    update.item_gradients = SparseRowMatrix(dim);
    for (std::size_t r = 0; r < rows_per_client; ++r) {
      auto row = update.item_gradients.RowMutable(rng.NextBounded(num_items));
      for (auto& v : row) v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
    updates.push_back(std::move(update));
  }
  return updates;
}

std::vector<EpochRecord> RunRecorded(const Dataset& data, FedConfig config,
                                     ThreadPool* pool) {
  MetricsConfig metrics_config;
  metrics_config.hr_negatives = 20;
  Rng rng(11);
  const LeaveOneOutSplit split = SplitLeaveOneOut(data, rng);
  Evaluator evaluator(split.train, split.test_items, metrics_config, 3);
  Simulation sim(split.train, config, 0, nullptr, pool);
  return sim.Run(&evaluator, {0}, /*eval_every=*/2);
}

// --- Sparse aggregation vs the dense path, all five rules ------------------

TEST(SparseAggregationTest, BitIdenticalToDensePathForAllRules) {
  const std::size_t num_items = 40;
  const std::size_t dim = 5;
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kTrimmedMean,
        AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    for (std::uint64_t seed : {1u, 2u, 3u}) {
      const auto updates = RandomUpdates(17, num_items, dim, 12, seed);
      AggregatorOptions options;
      options.kind = kind;
      options.krum_honest = 12;

      AggregationWorkspace workspace;
      SparseRoundDelta delta;
      AggregateUpdates(updates, dim, options, workspace, delta);
      const Matrix dense = AggregateUpdates(updates, num_items, dim, options);

      EXPECT_TRUE(delta.ToDense(num_items) == dense)
          << "kind=" << AggregatorKindToString(kind) << " seed=" << seed;
      // Touched rows are unique and ascending.
      for (std::size_t slot = 1; slot < delta.row_count(); ++slot) {
        EXPECT_LT(delta.rows()[slot - 1], delta.rows()[slot]);
      }
    }
  }
}

TEST(SparseAggregationTest, SumMatchesManualReference) {
  // Independent reference: accumulate contributor rows by hand, sharing no
  // code with the production sparse implementation.
  const std::size_t num_items = 25;
  const std::size_t dim = 4;
  const auto updates = RandomUpdates(9, num_items, dim, 6, 5);
  Matrix expected(num_items, dim);
  for (const ClientUpdate& update : updates) {
    for (std::size_t row : update.item_gradients.row_ids()) {
      const auto src = update.item_gradients.Row(row);
      auto dst = expected.Row(row);
      for (std::size_t d = 0; d < dim; ++d) dst[d] += src[d];
    }
  }
  AggregatorOptions options;
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, dim, options, workspace, delta);
  const Matrix actual = delta.ToDense(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_NEAR(actual.At(i, d), expected.At(i, d), 1e-5f);
    }
  }
}

TEST(SparseAggregationTest, TouchedRowsAreTheUploadUnion) {
  const auto updates = RandomUpdates(6, 30, 3, 5, 7);
  std::set<std::size_t> expected_rows;
  for (const ClientUpdate& update : updates) {
    for (std::size_t row : update.item_gradients.row_ids()) {
      expected_rows.insert(row);
    }
  }
  AggregatorOptions options;
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, 3, options, workspace, delta);
  EXPECT_EQ(delta.row_count(), expected_rows.size());
  std::size_t slot = 0;
  for (std::size_t row : expected_rows) {
    EXPECT_EQ(delta.rows()[slot++], row);
  }
}

TEST(SparseAggregationTest, EmptyRoundYieldsEmptyDelta) {
  AggregatorOptions options;
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates({}, 4, options, workspace, delta);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.cols(), 4u);
  EXPECT_FLOAT_EQ(delta.ToDense(10).FrobeniusNorm(), 0.0f);
}

TEST(SparseApplyTest, MatchesDenseApplyBitwise) {
  const std::size_t num_items = 35;
  const std::size_t dim = 6;
  const auto updates = RandomUpdates(10, num_items, dim, 8, 9);
  AggregatorOptions options;
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, dim, options, workspace, delta);

  MfHyperParams params;
  params.dim = dim;
  Rng rng_a(3), rng_b(3);
  MfModel sparse_model(num_items, params, rng_a);
  MfModel dense_model(num_items, params, rng_b);
  ASSERT_TRUE(sparse_model.item_factors() == dense_model.item_factors());

  sparse_model.ApplySparseGradient(delta, 0.01f);
  dense_model.ApplyGradient(delta.ToDense(num_items), 0.01f);
  EXPECT_TRUE(sparse_model.item_factors() == dense_model.item_factors());
}

// --- Engine determinism and serial/parallel equivalence --------------------

TEST(RoundEngineTest, SameSeedTwiceIsBitIdentical) {
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();
  const auto a = RunRecorded(data, config, nullptr);
  const auto b = RunRecorded(data, config, nullptr);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t e = 0; e < a.size(); ++e) {
    EXPECT_EQ(a[e].epoch, b[e].epoch);
    EXPECT_EQ(a[e].rounds, b[e].rounds);
    EXPECT_DOUBLE_EQ(a[e].train_loss, b[e].train_loss);
    ASSERT_EQ(a[e].has_metrics, b[e].has_metrics);
    if (a[e].has_metrics) {
      EXPECT_DOUBLE_EQ(a[e].metrics.hit_ratio, b[e].metrics.hit_ratio);
      EXPECT_DOUBLE_EQ(a[e].metrics.ndcg, b[e].metrics.ndcg);
      ASSERT_EQ(a[e].metrics.er_at.size(), b[e].metrics.er_at.size());
      for (std::size_t k = 0; k < a[e].metrics.er_at.size(); ++k) {
        EXPECT_DOUBLE_EQ(a[e].metrics.er_at[k], b[e].metrics.er_at[k]);
      }
    }
  }
}

TEST(RoundEngineTest, SerialAndParallelEnginesAreBitIdentical) {
  // Client streams are private, update slots are indexed, the loss reduction
  // and the aggregation walk fixed orders: thread scheduling must not change
  // a single bit of the records or the model.
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();
  ThreadPool pool(4);
  const auto serial = RunRecorded(data, config, nullptr);
  const auto parallel = RunRecorded(data, config, &pool);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t e = 0; e < serial.size(); ++e) {
    EXPECT_DOUBLE_EQ(serial[e].train_loss, parallel[e].train_loss);
    if (serial[e].has_metrics) {
      EXPECT_DOUBLE_EQ(serial[e].metrics.hit_ratio,
                       parallel[e].metrics.hit_ratio);
      EXPECT_DOUBLE_EQ(serial[e].metrics.ndcg, parallel[e].metrics.ndcg);
    }
  }

  Simulation sim_serial(data, config, 0, nullptr, nullptr);
  Simulation sim_parallel(data, config, 0, nullptr, &pool);
  for (int e = 0; e < 3; ++e) {
    EXPECT_DOUBLE_EQ(sim_serial.RunEpoch(), sim_parallel.RunEpoch());
  }
  EXPECT_TRUE(sim_serial.model().item_factors() ==
              sim_parallel.model().item_factors());
}

TEST(RoundEngineTest, RecordsCarryRoundThroughput) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.epochs = 2;
  const auto records = RunRecorded(data, config, nullptr);
  ASSERT_EQ(records.size(), 2u);
  for (const EpochRecord& record : records) {
    // ceil((60 benign + 0 malicious) / 16) = 4 rounds per epoch.
    EXPECT_EQ(record.rounds, 4u);
    EXPECT_GT(record.train_seconds, 0.0);
    EXPECT_GT(record.rounds_per_sec, 0.0);
  }
}

// --- Stage decomposition ---------------------------------------------------

TEST(RoundEngineTest, StagesPopulateTheWorkspace) {
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();
  Simulation sim(data, config, 0, nullptr, nullptr);
  RoundEngine& engine = sim.engine();

  engine.BeginEpoch(0);
  ASSERT_TRUE(engine.HasNextRound());
  EXPECT_EQ(engine.rounds_this_epoch(), 4u);

  engine.Select();
  const RoundWorkspace& workspace = engine.workspace();
  EXPECT_EQ(workspace.selected_benign.size(), config.clients_per_round);
  EXPECT_TRUE(workspace.selected_malicious.empty());

  const double loss = engine.LocalTrain();
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(workspace.updates.size(), config.clients_per_round);

  engine.Aggregate();
  EXPECT_FALSE(workspace.delta.empty());
  EXPECT_LE(workspace.delta.row_count(), data.num_items());

  const Matrix before = sim.model().item_factors();
  engine.Apply();
  EXPECT_FALSE(sim.model().item_factors() == before);
}

/// Coordinator asserting the engine exposes its workspace (and the benign
/// uploads of the round) through RoundContext.
class WorkspaceProbeCoordinator : public MaliciousCoordinator {
 public:
  std::string name() const override { return "workspace-probe"; }

  std::vector<ClientUpdate> ProduceUpdates(
      const RoundContext& context,
      std::span<const std::uint32_t> selected_malicious) override {
    EXPECT_NE(context.workspace, nullptr);
    if (context.workspace != nullptr) {
      // At attack time the workspace holds exactly the benign uploads.
      EXPECT_EQ(context.workspace->updates.size(),
                context.workspace->selected_benign.size());
      for (bool flag : context.workspace->is_malicious) EXPECT_FALSE(flag);
      benign_updates_seen_ += context.workspace->updates.size();
    }
    std::vector<ClientUpdate> updates;
    for (std::uint32_t id : selected_malicious) {
      ClientUpdate update;
      update.user = id;
      update.item_gradients = SparseRowMatrix(context.model->dim());
      updates.push_back(std::move(update));
    }
    return updates;
  }

  std::size_t benign_updates_seen_ = 0;
};

TEST(RoundEngineTest, ContextExposesWorkspaceToCoordinators) {
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();
  WorkspaceProbeCoordinator coordinator;
  Simulation sim(data, config, 8, &coordinator, nullptr);
  sim.RunEpoch();
  // Every benign client participated once and was visible to some call.
  EXPECT_LE(coordinator.benign_updates_seen_, data.num_users());
  EXPECT_GT(coordinator.benign_updates_seen_, 0u);
}

// --- Participation modes ---------------------------------------------------

TEST(ParticipationTest, UniformPerRoundSamplesDistinctClients) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.rounds_per_epoch = 10;
  Simulation sim(data, config, 0, nullptr, nullptr);
  std::size_t rounds = 0;
  sim.SetRoundObserver([&](const std::vector<ClientUpdate>& updates,
                           const std::vector<bool>&) {
    ++rounds;
    EXPECT_EQ(updates.size(), 16u);
    std::set<std::uint32_t> users;
    for (const ClientUpdate& update : updates) users.insert(update.user);
    EXPECT_EQ(users.size(), updates.size()) << "duplicate client in a round";
  });
  sim.RunEpoch();
  EXPECT_EQ(rounds, 10u);
  EXPECT_EQ(sim.global_round(), 10u);
}

TEST(ParticipationTest, UniformPerRoundIsDeterministicPerSeed) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.rounds_per_epoch = 6;
  Simulation a(data, config, 0, nullptr, nullptr);
  Simulation b(data, config, 0, nullptr, nullptr);
  EXPECT_DOUBLE_EQ(a.RunEpoch(), b.RunEpoch());
  EXPECT_TRUE(a.model().item_factors() == b.model().item_factors());
}

TEST(ParticipationTest, UniformDefaultRoundCountMatchesShuffledEpochs) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.rounds_per_epoch = 0;  // fall back to ceil(clients / batch)
  Simulation sim(data, config, 0, nullptr, nullptr);
  sim.RunEpoch();
  EXPECT_EQ(sim.global_round(), (data.num_users() + 15) / 16);
}

// --- Round pipelining ------------------------------------------------------

FedConfig UniformConfig(std::size_t clients_per_round, std::size_t rounds) {
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.clients_per_round = clients_per_round;
  config.rounds_per_epoch = rounds;
  return config;
}

Dataset SparseRegimeData() {
  // Large catalogue, few interactions per user, near-uniform item popularity
  // (no Zipf head shared by everyone): consecutive tiny selections rarely
  // share item rows, so most rounds are eligible for overlap.
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 4000;
  config.mean_interactions_per_user = 5.0;
  config.popularity_exponent = 0.05;
  config.popularity_mix = 0.0;
  config.seed = 3;
  return GenerateSynthetic(config);
}

TEST(PipelineTest, NoConflictScheduleOverlapsAndStaysBitIdentical) {
  const Dataset data = SparseRegimeData();
  const FedConfig config = UniformConfig(3, 20);
  ThreadPool pool(4);
  Simulation serial(data, config, 0, nullptr, nullptr);
  Simulation pipelined(data, config, 0, nullptr, &pool);
  for (int e = 0; e < 3; ++e) {
    EXPECT_DOUBLE_EQ(serial.RunEpoch(), pipelined.RunEpoch());
  }
  EXPECT_TRUE(serial.model().item_factors() ==
              pipelined.model().item_factors());
  // The serial engine never overlaps; the pooled one must actually have.
  EXPECT_EQ(serial.engine().pipelined_rounds(), 0u);
  EXPECT_GT(pipelined.engine().pipelined_rounds(), 0u);
}

TEST(PipelineTest, ConflictScheduleFallsBackToSerialAndStaysBitIdentical) {
  // Tiny catalogue: every consecutive selection pair shares rows, so the
  // engine must take the serial fallback on every round.
  const Dataset data = SmallData();
  const FedConfig config = UniformConfig(8, 12);
  ThreadPool pool(4);
  Simulation serial(data, config, 0, nullptr, nullptr);
  Simulation pipelined(data, config, 0, nullptr, &pool);
  for (int e = 0; e < 2; ++e) {
    EXPECT_DOUBLE_EQ(serial.RunEpoch(), pipelined.RunEpoch());
  }
  EXPECT_TRUE(serial.model().item_factors() ==
              pipelined.model().item_factors());
  EXPECT_EQ(pipelined.engine().pipelined_rounds(), 0u);
}

TEST(PipelineTest, DisableFlagForcesSerialSchedule) {
  const Dataset data = SparseRegimeData();
  FedConfig config = UniformConfig(3, 20);
  config.pipeline_rounds = false;
  ThreadPool pool(4);
  Simulation serial(data, config, 0, nullptr, nullptr);
  Simulation parallel(data, config, 0, nullptr, &pool);
  for (int e = 0; e < 2; ++e) {
    EXPECT_DOUBLE_EQ(serial.RunEpoch(), parallel.RunEpoch());
  }
  EXPECT_TRUE(serial.model().item_factors() == parallel.model().item_factors());
  EXPECT_EQ(parallel.engine().pipelined_rounds(), 0u);
}

TEST(PipelineTest, MaliciousRoundsStayBitIdenticalUnderPipelining) {
  // With malicious clients in the draw the engine only overlaps rounds whose
  // *next* selection is purely benign; either way the trajectory must match
  // the serial schedule exactly.
  const Dataset data = SparseRegimeData();
  const FedConfig config = UniformConfig(3, 20);
  ThreadPool pool(4);
  WorkspaceProbeCoordinator serial_coordinator;
  WorkspaceProbeCoordinator pipelined_coordinator;
  Simulation serial(data, config, 6, &serial_coordinator, nullptr);
  Simulation pipelined(data, config, 6, &pipelined_coordinator, &pool);
  for (int e = 0; e < 3; ++e) {
    EXPECT_DOUBLE_EQ(serial.RunEpoch(), pipelined.RunEpoch());
  }
  EXPECT_TRUE(serial.model().item_factors() ==
              pipelined.model().item_factors());
}

TEST(RoundEngineTest, SteadyStateRoundsAreSparseAllocationFree) {
  // Near-constant per-client interaction counts: every update slot's
  // capacity watermark is reached within the warm-up epochs, after which
  // whole epochs of rounds touch the heap zero times.
  SyntheticConfig data_config;
  data_config.num_users = 60;
  data_config.num_items = 90;
  data_config.mean_interactions_per_user = 12.0;
  data_config.activity_sigma = 0.05;
  data_config.seed = 1;
  const Dataset data = GenerateSynthetic(data_config);
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  config.rounds_per_epoch = 8;
  Simulation sim(data, config, 0, nullptr, nullptr);
  for (int e = 0; e < 5; ++e) sim.RunEpoch();  // warm every slot's capacity
  ResetSparseAllocationCount();
  for (int e = 0; e < 3; ++e) sim.RunEpoch();
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

TEST(ParticipationTest, ModeNamesRoundTrip) {
  EXPECT_STREQ(ParticipationModeToString(ParticipationMode::kShuffledEpochs),
               "shuffled-epochs");
  EXPECT_STREQ(ParticipationModeToString(ParticipationMode::kUniformPerRound),
               "uniform-per-round");
}

}  // namespace
}  // namespace fedrec
