#include "data/dataset.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

Dataset MakeSmall() {
  // 3 users, 5 items.
  std::vector<Interaction> tuples{
      {0, 0}, {0, 2}, {0, 4}, {1, 1}, {1, 2}, {2, 3},
  };
  auto ds = Dataset::FromInteractions("small", 3, 5, std::move(tuples));
  ds.status().CheckOK();
  return std::move(ds).value();
}

TEST(DatasetTest, BasicAccessors) {
  const Dataset ds = MakeSmall();
  EXPECT_EQ(ds.name(), "small");
  EXPECT_EQ(ds.num_users(), 3u);
  EXPECT_EQ(ds.num_items(), 5u);
  EXPECT_EQ(ds.num_interactions(), 6u);
  EXPECT_EQ(ds.UserItems(0), (std::vector<std::uint32_t>{0, 2, 4}));
  EXPECT_EQ(ds.UserItems(2), (std::vector<std::uint32_t>{3}));
}

TEST(DatasetTest, DuplicatesDropped) {
  std::vector<Interaction> tuples{{0, 1}, {0, 1}, {0, 1}, {1, 0}};
  auto ds = Dataset::FromInteractions("dup", 2, 2, std::move(tuples));
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds.value().num_interactions(), 2u);
  EXPECT_EQ(ds.value().UserItems(0), (std::vector<std::uint32_t>{1}));
}

TEST(DatasetTest, RejectsOutOfRangeReferences) {
  EXPECT_FALSE(Dataset::FromInteractions("bad", 2, 2, {{2, 0}}).ok());
  EXPECT_FALSE(Dataset::FromInteractions("bad", 2, 2, {{0, 2}}).ok());
  EXPECT_FALSE(Dataset::FromInteractions("bad", 0, 2, {}).ok());
  EXPECT_FALSE(Dataset::FromInteractions("bad", 2, 0, {}).ok());
}

TEST(DatasetTest, HasInteraction) {
  const Dataset ds = MakeSmall();
  EXPECT_TRUE(ds.HasInteraction(0, 2));
  EXPECT_FALSE(ds.HasInteraction(0, 1));
  EXPECT_TRUE(ds.HasInteraction(2, 3));
  EXPECT_FALSE(ds.HasInteraction(2, 0));
}

TEST(DatasetTest, ItemPopularity) {
  const Dataset ds = MakeSmall();
  const auto pop = ds.ItemPopularity();
  EXPECT_EQ(pop, (std::vector<std::size_t>{1, 1, 2, 1, 1}));
}

TEST(DatasetTest, ItemsByPopularityOrdering) {
  const Dataset ds = MakeSmall();
  const auto order = ds.ItemsByPopularity();
  ASSERT_EQ(order.size(), 5u);
  EXPECT_EQ(order[0], 2u);  // item 2 has 2 interactions
  // Ties broken by id.
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
}

TEST(DatasetTest, AverageAndSparsity) {
  const Dataset ds = MakeSmall();
  EXPECT_DOUBLE_EQ(ds.AverageInteractionsPerUser(), 2.0);
  EXPECT_DOUBLE_EQ(ds.Sparsity(), 1.0 - 6.0 / 15.0);
}

TEST(DatasetTest, AllInteractionsRoundTrip) {
  const Dataset ds = MakeSmall();
  const auto all = ds.AllInteractions();
  EXPECT_EQ(all.size(), 6u);
  auto rebuilt = Dataset::FromInteractions("re", 3, 5, all);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt.value().num_interactions(), 6u);
  for (std::size_t u = 0; u < 3; ++u) {
    EXPECT_EQ(rebuilt.value().UserItems(u), ds.UserItems(u));
  }
}

TEST(LeaveOneOutTest, HoldsOutOneItemPerEligibleUser) {
  const Dataset ds = MakeSmall();
  Rng rng(1);
  const LeaveOneOutSplit split = SplitLeaveOneOut(ds, rng);
  // Users 0 and 1 have >= 2 interactions; user 2 has 1 (no test item).
  EXPECT_NE(split.test_items[0], LeaveOneOutSplit::kNoTestItem);
  EXPECT_NE(split.test_items[1], LeaveOneOutSplit::kNoTestItem);
  EXPECT_EQ(split.test_items[2], LeaveOneOutSplit::kNoTestItem);
  EXPECT_EQ(split.NumTestUsers(), 2u);

  // Train set shrinks exactly by the held-out items.
  EXPECT_EQ(split.train.num_interactions(), 4u);
  for (std::size_t u : {0u, 1u}) {
    const auto item = static_cast<std::uint32_t>(split.test_items[u]);
    EXPECT_FALSE(split.train.HasInteraction(u, item));
    EXPECT_TRUE(ds.HasInteraction(u, item));
  }
  // User 2's single interaction stays in train.
  EXPECT_TRUE(split.train.HasInteraction(2, 3));
}

TEST(LeaveOneOutTest, DeterministicPerSeed) {
  const Dataset ds = MakeSmall();
  Rng rng1(9), rng2(9);
  const auto a = SplitLeaveOneOut(ds, rng1);
  const auto b = SplitLeaveOneOut(ds, rng2);
  EXPECT_EQ(a.test_items, b.test_items);
}

TEST(LeaveOneOutTest, PreservesUserAndItemCounts) {
  const Dataset ds = MakeSmall();
  Rng rng(3);
  const auto split = SplitLeaveOneOut(ds, rng);
  EXPECT_EQ(split.train.num_users(), ds.num_users());
  EXPECT_EQ(split.train.num_items(), ds.num_items());
}

TEST(InteractionTest, OrderingAndEquality) {
  EXPECT_TRUE((Interaction{0, 5}) < (Interaction{1, 0}));
  EXPECT_TRUE((Interaction{1, 2}) < (Interaction{1, 3}));
  EXPECT_TRUE((Interaction{2, 2}) == (Interaction{2, 2}));
  EXPECT_FALSE((Interaction{2, 2}) == (Interaction{2, 3}));
}

}  // namespace
}  // namespace fedrec
