#include "attack/attack_factory.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedrec {
namespace {

struct AttackTestSetup {
  Dataset data;
  PublicInteractions view;
};

AttackTestSetup MakeSetup() {
  SyntheticConfig config;
  config.num_users = 40;
  config.num_items = 60;
  config.mean_interactions_per_user = 10.0;
  config.seed = 1;
  AttackTestSetup setup{GenerateSynthetic(config), {}};
  Rng rng(2);
  setup.view = PublicInteractions::Sample(setup.data, 0.2, rng);
  return setup;
}

AttackInputs MakeInputs(const AttackTestSetup& setup) {
  AttackInputs inputs;
  inputs.train = &setup.data;
  inputs.public_view = &setup.view;
  inputs.num_benign_users = setup.data.num_users();
  inputs.dim = 6;
  return inputs;
}

TEST(AttackFactoryTest, NoneYieldsNull) {
  const AttackTestSetup setup = MakeSetup();
  AttackOptions options;
  options.kind = "none";
  auto attack = CreateAttack(options, MakeInputs(setup));
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(attack.value(), nullptr);
}

TEST(AttackFactoryTest, AllSupportedKindsConstruct) {
  const AttackTestSetup setup = MakeSetup();
  for (const std::string& kind : SupportedAttackKinds()) {
    AttackOptions options;
    options.kind = kind;
    options.target_items = {5};
    options.surrogate_epochs = 2;  // keep P1/P2 construction fast
    auto attack = CreateAttack(options, MakeInputs(setup));
    ASSERT_TRUE(attack.ok()) << kind << ": " << attack.status().ToString();
    if (kind == "none") {
      EXPECT_EQ(attack.value(), nullptr);
    } else {
      ASSERT_NE(attack.value(), nullptr) << kind;
      EXPECT_EQ(attack.value()->name(), kind);
    }
  }
}

TEST(AttackFactoryTest, KindIsCaseInsensitive) {
  const AttackTestSetup setup = MakeSetup();
  AttackOptions options;
  options.kind = "FedRecAttack";
  options.target_items = {5};
  auto attack = CreateAttack(options, MakeInputs(setup));
  ASSERT_TRUE(attack.ok());
  EXPECT_EQ(attack.value()->name(), "fedrecattack");
}

TEST(AttackFactoryTest, UnknownKindReturnsNotFound) {
  const AttackTestSetup setup = MakeSetup();
  AttackOptions options;
  options.kind = "quantum";
  options.target_items = {5};
  auto attack = CreateAttack(options, MakeInputs(setup));
  ASSERT_FALSE(attack.ok());
  EXPECT_EQ(attack.status().code(), StatusCode::kNotFound);
}

TEST(AttackFactoryTest, MissingTargetsRejected) {
  const AttackTestSetup setup = MakeSetup();
  AttackOptions options;
  options.kind = "random";
  auto attack = CreateAttack(options, MakeInputs(setup));
  ASSERT_FALSE(attack.ok());
  EXPECT_EQ(attack.status().code(), StatusCode::kInvalidArgument);
}

TEST(AttackFactoryTest, FedRecAttackNeedsPublicView) {
  const AttackTestSetup setup = MakeSetup();
  AttackOptions options;
  options.kind = "fedrecattack";
  options.target_items = {5};
  AttackInputs inputs = MakeInputs(setup);
  inputs.public_view = nullptr;
  auto attack = CreateAttack(options, inputs);
  ASSERT_FALSE(attack.ok());
  EXPECT_EQ(attack.status().code(), StatusCode::kInvalidArgument);
}

TEST(AttackFactoryTest, MissingDatasetRejected) {
  AttackOptions options;
  options.kind = "random";
  options.target_items = {5};
  AttackInputs inputs;
  auto attack = CreateAttack(options, inputs);
  ASSERT_FALSE(attack.ok());
}

}  // namespace
}  // namespace fedrec
