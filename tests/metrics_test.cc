#include "model/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

/// Hand-analyzable fixture: 2 users, 6 items, dim 2.
/// u0 = (1,0) scores item j as V[j][0] = 10 - j (item 0 best).
/// u1 = (0,1) scores item j as V[j][1] = j     (item 5 best).
/// Train: u0 -> {0}, u1 -> {5}. Held-out test: u0 -> 1, u1 -> 0.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto ds = Dataset::FromInteractions("toy", 2, 6, {{0, 0}, {1, 5}});
    ds.status().CheckOK();
    train_ = std::move(ds).value();
    test_items_ = {1, 0};

    users_ = Matrix(2, 2);
    users_.At(0, 0) = 1.0f;
    users_.At(1, 1) = 1.0f;
    items_ = Matrix(6, 2);
    for (std::size_t j = 0; j < 6; ++j) {
      items_.At(j, 0) = 10.0f - static_cast<float>(j);
      items_.At(j, 1) = static_cast<float>(j);
    }
  }

  MetricsConfig Config() const {
    MetricsConfig config;
    config.er_ks = {2, 4};
    config.ndcg_k = 2;
    config.hr_k = 2;
    config.hr_negatives = 2;
    return config;
  }

  Dataset train_;
  std::vector<std::int64_t> test_items_;
  Matrix users_;
  Matrix items_;
};

TEST_F(MetricsTest, ExposureRatioHandComputed) {
  Evaluator evaluator(train_, test_items_, Config(), /*seed=*/1);
  // Target item 4.
  // u0 rec order (excluding train item 0): 1,2,3,4,5 -> top-2 misses 4,
  //   top-4 hits it. u1 rec order (excluding 5): 4,3,2,1,0 -> top-2 hits.
  const MetricsResult r =
      evaluator.Evaluate(users_, items_, {4}, /*pool=*/nullptr);
  EXPECT_NEAR(r.ErAt(2, evaluator.config()), 0.5, 1e-12);
  EXPECT_NEAR(r.ErAt(4, evaluator.config()), 1.0, 1e-12);
}

TEST_F(MetricsTest, NdcgHandComputed) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  // u0: target 4 outside top-2 -> DCG 0. u1: target 4 at rank 0 -> DCG 1,
  // IDCG 1. NDCG = (0 + 1)/2.
  const MetricsResult r = evaluator.Evaluate(users_, items_, {4}, nullptr);
  EXPECT_NEAR(r.ndcg, 0.5, 1e-12);
}

TEST_F(MetricsTest, NdcgRankTwoValue) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  // Target 3: u0 rec (1,2,3,...) rank 2 -> outside top-2 -> 0.
  //           u1 rec (4,3,...) rank 1 -> DCG = 1/log2(3), IDCG = 1.
  const MetricsResult r = evaluator.Evaluate(users_, items_, {3}, nullptr);
  EXPECT_NEAR(r.ndcg, 0.5 * (1.0 / std::log2(3.0)), 1e-12);
}

TEST_F(MetricsTest, HitRatioHandComputed) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  // u0's test item 1 is its best-scored non-train item -> rank 0 -> hit.
  // u1's test item 0 is its worst item -> rank = #negatives = 2 >= hr_k -> miss.
  const MetricsResult r = evaluator.Evaluate(users_, items_, {4}, nullptr);
  EXPECT_NEAR(r.hit_ratio, 0.5, 1e-12);
}

TEST_F(MetricsTest, TargetInteractedByUserExcludedFromDenominator) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  // Target 0 is in u0's training set: u0 contributes 0 (|Vtar ^ V-| = 0).
  // For u1, item 0 ranks last -> outside top-2 and top-4.
  const MetricsResult r = evaluator.Evaluate(users_, items_, {0}, nullptr);
  EXPECT_NEAR(r.ErAt(2, evaluator.config()), 0.0, 1e-12);
  EXPECT_NEAR(r.ErAt(4, evaluator.config()), 0.0, 1e-12);
}

TEST_F(MetricsTest, MultipleTargetsFractionalCredit) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  // Targets {1, 4}: u0 top-2 = {1,2} -> 1 of 2 targets. u1 top-2 = {4,3} ->
  // 1 of 2 targets. ER@2 = 0.5.
  const MetricsResult r = evaluator.Evaluate(users_, items_, {1, 4}, nullptr);
  EXPECT_NEAR(r.ErAt(2, evaluator.config()), 0.5, 1e-12);
}

TEST_F(MetricsTest, ParallelEvaluationMatchesSerial) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  ThreadPool pool(4);
  const MetricsResult serial = evaluator.Evaluate(users_, items_, {4}, nullptr);
  const MetricsResult parallel = evaluator.Evaluate(users_, items_, {4}, &pool);
  EXPECT_DOUBLE_EQ(serial.er_at[0], parallel.er_at[0]);
  EXPECT_DOUBLE_EQ(serial.er_at[1], parallel.er_at[1]);
  EXPECT_DOUBLE_EQ(serial.ndcg, parallel.ndcg);
  EXPECT_DOUBLE_EQ(serial.hit_ratio, parallel.hit_ratio);
}

TEST_F(MetricsTest, ExposureRatioShortcutMatchesFullEvaluate) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  const MetricsResult full = evaluator.Evaluate(users_, items_, {4}, nullptr);
  EXPECT_DOUBLE_EQ(evaluator.ExposureRatio(users_, items_, {4}, 2, nullptr),
                   full.ErAt(2, evaluator.config()));
}

TEST_F(MetricsTest, UsersWithoutTestItemSkippedInHr) {
  std::vector<std::int64_t> tests = {1, LeaveOneOutSplit::kNoTestItem};
  Evaluator evaluator(train_, tests, Config(), 1);
  const MetricsResult r = evaluator.Evaluate(users_, items_, {4}, nullptr);
  // Only u0 counts: its test item ranks 0 -> HR 1.0.
  EXPECT_NEAR(r.hit_ratio, 1.0, 1e-12);
}

TEST_F(MetricsTest, ErAtUnconfiguredKAborts) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  const MetricsResult r = evaluator.Evaluate(users_, items_, {4}, nullptr);
  EXPECT_DEATH(r.ErAt(7, evaluator.config()), "not configured");
}

TEST_F(MetricsTest, MismatchedShapesAbort) {
  Evaluator evaluator(train_, test_items_, Config(), 1);
  Matrix wrong_users(3, 2);
  EXPECT_DEATH(evaluator.Evaluate(wrong_users, items_, {4}, nullptr), "");
  Matrix wrong_items(5, 2);
  EXPECT_DEATH(evaluator.Evaluate(users_, wrong_items, {4}, nullptr), "");
}

TEST_F(MetricsTest, DeterministicAcrossConstructions) {
  Evaluator a(train_, test_items_, Config(), 42);
  Evaluator b(train_, test_items_, Config(), 42);
  const MetricsResult ra = a.Evaluate(users_, items_, {4}, nullptr);
  const MetricsResult rb = b.Evaluate(users_, items_, {4}, nullptr);
  EXPECT_DOUBLE_EQ(ra.hit_ratio, rb.hit_ratio);
  EXPECT_DOUBLE_EQ(ra.ndcg, rb.ndcg);
}

}  // namespace
}  // namespace fedrec
