#include "fed/client.h"

#include <gtest/gtest.h>

#include "common/math.h"

namespace fedrec {
namespace {

FedConfig MakeConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clip_norm = 1.0f;
  config.noise_scale = 0.0f;
  return config;
}

Matrix MakeItems(std::size_t n, std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  Matrix items(n, dim);
  items.FillGaussian(rng, 0.0f, 0.3f);
  return items;
}

TEST(ClientTest, ConstructionSortsPositives) {
  const FedConfig config = MakeConfig();
  Client client(3, {5, 1, 9}, config.model, Rng(1));
  EXPECT_EQ(client.user_id(), 3u);
  EXPECT_EQ(client.positives(), (std::vector<std::uint32_t>{1, 5, 9}));
  EXPECT_EQ(client.user_vector().size(), 8u);
}

TEST(ClientTest, TrainRoundUploadsOnlyTouchedItems) {
  const FedConfig config = MakeConfig();
  const Matrix items = MakeItems(30, 8, 2);
  Client client(0, {2, 7}, config.model, Rng(3));
  client.ResampleNegatives(30, 1);
  const ClientUpdate update = client.TrainRound(items, config);
  EXPECT_EQ(update.user, 0u);
  EXPECT_EQ(update.pair_count, 2u);
  // Positives always appear among uploaded rows.
  EXPECT_TRUE(update.item_gradients.Contains(2));
  EXPECT_TRUE(update.item_gradients.Contains(7));
  // At most 2 positives + 2 negatives rows.
  EXPECT_LE(update.item_gradients.row_count(), 4u);
  // Negative rows are never the positives themselves.
  for (std::size_t row : update.item_gradients.row_ids()) {
    EXPECT_LT(row, 30u);
  }
}

TEST(ClientTest, RowsRespectClipBound) {
  FedConfig config = MakeConfig();
  config.clip_norm = 0.05f;  // aggressive clip
  Matrix items = MakeItems(20, 8, 4);
  Scale(20.0f, items.Data());  // big factors -> big raw gradients
  Client client(0, {0, 1, 2, 3, 4}, config.model, Rng(5));
  client.ResampleNegatives(20, 1);
  const ClientUpdate update = client.TrainRound(items, config);
  EXPECT_LE(update.item_gradients.MaxRowNorm(), 0.05f * 1.001f);
}

TEST(ClientTest, LocalUserVectorUpdatedByTraining) {
  const FedConfig config = MakeConfig();
  const Matrix items = MakeItems(30, 8, 6);
  Client client(0, {1, 2, 3}, config.model, Rng(7));
  const std::vector<float> before = client.user_vector();
  client.ResampleNegatives(30, 1);
  client.TrainRound(items, config);
  EXPECT_NE(client.user_vector(), before);
}

TEST(ClientTest, NoiseIncreasesUploadVariance) {
  FedConfig noiseless = MakeConfig();
  FedConfig noisy = MakeConfig();
  noisy.noise_scale = 1.0f;
  const Matrix items = MakeItems(30, 8, 8);

  Client a(0, {1, 2}, noiseless.model, Rng(9));
  Client b(0, {1, 2}, noisy.model, Rng(9));
  a.ResampleNegatives(30, 1);
  b.ResampleNegatives(30, 1);
  const ClientUpdate ua = a.TrainRound(items, noiseless);
  const ClientUpdate ub = b.TrainRound(items, noisy);
  // Same RNG stream and data: without noise the uploads would be identical;
  // with mu > 0 they must differ.
  bool differ = false;
  for (std::size_t row : ua.item_gradients.row_ids()) {
    if (!ub.item_gradients.Contains(row)) {
      differ = true;
      break;
    }
    const auto ra = ua.item_gradients.Row(row);
    const auto rb = ub.item_gradients.Row(row);
    for (std::size_t d = 0; d < ra.size(); ++d) {
      if (ra[d] != rb[d]) differ = true;
    }
  }
  EXPECT_TRUE(differ);
}

TEST(ClientTest, LossDecreasesOverRepeatedRounds) {
  const FedConfig config = MakeConfig();
  Matrix items = MakeItems(40, 8, 10);
  Client client(0, {0, 1, 2, 3, 4, 5}, config.model, Rng(11));
  client.ResampleNegatives(40, 1);
  double first_loss = 0.0, last_loss = 0.0;
  for (int round = 0; round < 60; ++round) {
    const ClientUpdate update = client.TrainRound(items, config);
    // Apply the upload to the item matrix like the server would.
    update.item_gradients.AddTo(items, -config.model.learning_rate);
    if (round == 0) first_loss = update.loss;
    last_loss = update.loss;
  }
  EXPECT_LT(last_loss, first_loss);
}

TEST(ClientTest, LazyNegativeSamplingOnFirstRound) {
  const FedConfig config = MakeConfig();
  const Matrix items = MakeItems(30, 8, 12);
  Client client(0, {1, 2}, config.model, Rng(13));
  // No explicit ResampleNegatives: TrainRound must self-initialize.
  const ClientUpdate update = client.TrainRound(items, config);
  EXPECT_EQ(update.pair_count, 2u);
}

void ExpectUpdatesBitIdentical(const ClientUpdate& a, const ClientUpdate& b) {
  EXPECT_EQ(a.user, b.user);
  EXPECT_EQ(a.pair_count, b.pair_count);
  EXPECT_EQ(a.loss, b.loss);
  ASSERT_EQ(a.item_gradients.row_ids(), b.item_gradients.row_ids());
  for (std::size_t slot = 0; slot < a.item_gradients.row_count(); ++slot) {
    const auto ra = a.item_gradients.RowAtSlot(slot);
    const auto rb = b.item_gradients.RowAtSlot(slot);
    for (std::size_t d = 0; d < ra.size(); ++d) {
      ASSERT_EQ(ra[d], rb[d]) << "slot " << slot << " dim " << d;
    }
  }
}

TEST(ClientTest, TrainRoundIntoMatchesTrainRoundBitwise) {
  // Same client data, same private RNG stream: the recycling API must draw
  // and compute exactly what the returning wrapper does, round after round.
  FedConfig config = MakeConfig();
  config.noise_scale = 0.5f;  // exercises the rng stream equivalence too
  const Matrix items = MakeItems(40, 8, 16);
  Client fresh_client(3, {1, 4, 9, 12}, config.model, Rng(17));
  Client reuse_client(3, {1, 4, 9, 12}, config.model, Rng(17));
  fresh_client.ResampleNegatives(40, 1);
  reuse_client.ResampleNegatives(40, 1);
  ClientUpdate reused;
  for (int round = 0; round < 5; ++round) {
    const ClientUpdate fresh = fresh_client.TrainRound(items, config);
    reuse_client.TrainRoundInto(items, config, reused);
    ExpectUpdatesBitIdentical(fresh, reused);
    EXPECT_EQ(fresh_client.user_vector(), reuse_client.user_vector());
  }
}

TEST(ClientTest, TrainRoundIntoMatchesWithRepeatedPositivePairing) {
  // negatives_per_positive > 1 routes through the client's pairing scratch.
  FedConfig config = MakeConfig();
  config.negatives_per_positive = 3;
  const Matrix items = MakeItems(50, 8, 20);
  Client fresh_client(1, {2, 7}, config.model, Rng(21));
  Client reuse_client(1, {2, 7}, config.model, Rng(21));
  fresh_client.ResampleNegatives(50, 3);
  reuse_client.ResampleNegatives(50, 3);
  ClientUpdate reused;
  for (int round = 0; round < 3; ++round) {
    const ClientUpdate fresh = fresh_client.TrainRound(items, config);
    reuse_client.TrainRoundInto(items, config, reused);
    EXPECT_EQ(fresh.pair_count, 6u);
    ExpectUpdatesBitIdentical(fresh, reused);
  }
}

TEST(ClientTest, TrainRoundIntoSteadyStateIsAllocationFree) {
  const FedConfig config = MakeConfig();
  const Matrix items = MakeItems(50, 8, 18);
  Client client(0, {2, 5, 11, 17, 23}, config.model, Rng(19));
  client.ResampleNegatives(50, 1);
  ClientUpdate slot;
  client.TrainRoundInto(items, config, slot);  // warm the slot's buffers
  ResetSparseAllocationCount();
  for (int round = 0; round < 20; ++round) {
    client.TrainRoundInto(items, config, slot);
  }
  EXPECT_EQ(SparseAllocationCount(), 0u);
}

TEST(ClientTest, NegativesPerPositiveMultiplier) {
  FedConfig config = MakeConfig();
  config.negatives_per_positive = 3;
  const Matrix items = MakeItems(50, 8, 14);
  Client client(0, {1, 2}, config.model, Rng(15));
  client.ResampleNegatives(50, 3);
  const ClientUpdate update = client.TrainRound(items, config);
  EXPECT_EQ(update.pair_count, 6u);  // 2 positives x 3 negatives
}

}  // namespace
}  // namespace fedrec
