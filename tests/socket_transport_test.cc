#include "shard/socket_transport.h"

#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fed/simulation.h"
#include "shard/shard_daemon.h"
#include "shard/sharded_round_engine.h"
#include "shard/transport.h"

namespace fedrec {
namespace {

Dataset EngineData() {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.mean_interactions_per_user = 12.0;
  config.seed = 1;
  return GenerateSynthetic(config);
}

FedConfig EngineConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clients_per_round = 16;
  config.epochs = 3;
  config.seed = 2;
  return config;
}

/// Shard daemons on threads: the fedrec_shardd serving loop, self-hosted so
/// tests exercise the real TCP path without process management.
class DaemonFleet {
 public:
  explicit DaemonFleet(std::size_t num_shards) {
    for (std::size_t s = 0; s < num_shards; ++s) {
      ShardDaemon::Options options;
      options.shard_index = s;
      daemons_.push_back(std::make_unique<ShardDaemon>(options));
      daemons_.back()->Listen().CheckOK();
      ShardEndpoint endpoint;
      endpoint.port = daemons_.back()->port();
      endpoints_.push_back(endpoint);
    }
    threads_.resize(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      threads_[s] = std::thread([this, s] { daemons_[s]->Run(); });
    }
  }

  ~DaemonFleet() {
    for (std::size_t s = 0; s < daemons_.size(); ++s) Kill(s);
  }

  /// Stops shardd `s` and destroys it: its connections close, its port is
  /// released, and subsequent deliveries are refused.
  void Kill(std::size_t s) {
    if (daemons_[s] == nullptr) return;
    daemons_[s]->RequestStop();
    threads_[s].join();
    daemons_[s].reset();
  }

  /// Brings shardd `s` back on its original port (SO_REUSEADDR rebind); the
  /// restarted daemon is stateless and rejoins via the hello handshake.
  void Restart(std::size_t s) {
    ShardDaemon::Options options;
    options.shard_index = s;
    options.port = endpoints_[s].port;
    daemons_[s] = std::make_unique<ShardDaemon>(options);
    daemons_[s]->Listen().CheckOK();
    threads_[s] = std::thread([this, s] { daemons_[s]->Run(); });
  }

  const std::vector<ShardEndpoint>& endpoints() const { return endpoints_; }
  const ShardDaemon& daemon(std::size_t s) const { return *daemons_[s]; }

 private:
  std::vector<std::unique_ptr<ShardDaemon>> daemons_;
  std::vector<std::thread> threads_;
  std::vector<ShardEndpoint> endpoints_;
};

/// Runs `epochs` epochs of `sim` through `transport`; returns per-epoch
/// losses and exposes the engine for ledger inspection via `out_engine`.
std::vector<double> RunOverTransport(Simulation& sim, const FedConfig& config,
                                     ShardTransport& transport,
                                     std::size_t epochs,
                                     FaultStats* ledger = nullptr) {
  ShardedRoundEngine sharded(&sim.engine(), &sim.model(), &config, &transport,
                             nullptr);
  std::vector<double> losses;
  for (std::size_t e = 0; e < epochs; ++e) {
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) loss += sharded.RunRound();
    losses.push_back(loss);
  }
  if (ledger != nullptr) *ledger = sharded.wire_fault_stats();
  return losses;
}

// --- bit-identity over TCP ---------------------------------------------------

TEST(SocketShardTransportTest, BitIdenticalForAllRulesAndShardCounts) {
  const Dataset data = EngineData();
  for (const AggregatorKind kind :
       {AggregatorKind::kSum, AggregatorKind::kTrimmedMean,
        AggregatorKind::kMedian, AggregatorKind::kNormBound,
        AggregatorKind::kKrum}) {
    FedConfig config = EngineConfig();
    config.epochs = 2;
    config.aggregator.kind = kind;  // krum_honest 0 = derive per round
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      DaemonFleet fleet(shards);
      const ShardPlan plan(data.num_items(), shards, ShardPolicy::kHashed);
      SocketShardTransport::Options transport_options;
      transport_options.endpoints = fleet.endpoints();
      SocketShardTransport transport(plan, config.model.dim,
                                     transport_options);

      Simulation reference(data, config, 0, nullptr, nullptr);
      Simulation socket_sim(data, config, 0, nullptr, nullptr);
      FaultStats ledger;
      const std::vector<double> socket_losses =
          RunOverTransport(socket_sim, config, transport, config.epochs,
                           &ledger);
      for (std::size_t e = 0; e < config.epochs; ++e) {
        EXPECT_DOUBLE_EQ(reference.RunEpoch(), socket_losses[e])
            << AggregatorKindToString(kind) << " shards=" << shards
            << " epoch=" << e;
      }
      EXPECT_TRUE(reference.model().item_factors() ==
                  socket_sim.model().item_factors())
          << AggregatorKindToString(kind) << " shards=" << shards;
      // Healthy daemons: the degraded protocol ran but recorded nothing.
      EXPECT_EQ(ledger.shard_outages, 0u);
      EXPECT_EQ(ledger.fallback_shards, 0u);
      EXPECT_EQ(ledger.corrupt_messages, 0u);
    }
  }
}

// --- killed shardd == injected outage ---------------------------------------

/// The injected twin of a killed shardd: delegates to the in-process
/// transport but fails shard `dead_shard` with the outage code from global
/// round `dead_from_round` on.
class InjectedOutageTransport final : public ShardTransport {
 public:
  InjectedOutageTransport(const ShardPlan& plan, std::size_t dim,
                          std::size_t dead_shard,
                          std::uint64_t dead_from_round)
      : inner_(plan, dim),
        dead_shard_(dead_shard),
        dead_from_round_(dead_from_round) {}

  ShardServer& server() override { return inner_.server(); }
  bool fallible() const override { return true; }
  const char* name() const override { return "injected-outage"; }

  [[nodiscard]] Status ExecuteShardRound(std::size_t s,
                                         const AggregatorOptions& options,
                                         std::size_t round_size,
                                         std::uint64_t krum_source,
                                         std::uint64_t round,
                                         std::uint64_t attempt) override {
    if (s == dead_shard_ && round >= dead_from_round_) {
      return Status::IOError("injected: shardd is down");
    }
    return inner_.ExecuteShardRound(s, options, round_size, krum_source,
                                    round, attempt);
  }

 private:
  InProcessShardTransport inner_;
  std::size_t dead_shard_;
  std::uint64_t dead_from_round_;
};

TEST(SocketShardTransportTest, KilledSharddLedgerMatchesInjectedOutage) {
  const Dataset data = EngineData();
  const FedConfig config = EngineConfig();  // 3 epochs
  const std::size_t shards = 3;
  const std::size_t dead = 2;
  const std::uint64_t rounds_per_epoch =
      (data.num_users() + config.clients_per_round - 1) /
      config.clients_per_round;
  const ShardPlan plan(data.num_items(), shards, ShardPolicy::kContiguousRange);

  // Socket run: kill shardd `dead` after epoch 0; it stays down.
  DaemonFleet fleet(shards);
  SocketShardTransport::Options transport_options;
  transport_options.endpoints = fleet.endpoints();
  SocketShardTransport transport(plan, config.model.dim, transport_options);
  Simulation socket_sim(data, config, 0, nullptr, nullptr);
  ShardedRoundEngine socket_engine(&socket_sim.engine(), &socket_sim.model(),
                                   &config, &transport, nullptr);
  std::vector<double> socket_losses;
  for (std::size_t e = 0; e < config.epochs; ++e) {
    if (e == 1) fleet.Kill(dead);
    socket_engine.BeginEpoch(e);
    double loss = 0.0;
    while (socket_engine.HasNextRound()) loss += socket_engine.RunRound();
    socket_losses.push_back(loss);
  }

  // Injected twin: an in-process run whose fault is "shard `dead` is out
  // from the same global round on".
  InjectedOutageTransport injected(plan, config.model.dim, dead,
                                   rounds_per_epoch);
  Simulation injected_sim(data, config, 0, nullptr, nullptr);
  FaultStats injected_ledger;
  const std::vector<double> injected_losses = RunOverTransport(
      injected_sim, config, injected, config.epochs, &injected_ledger);

  // Clean single-server reference: the fallback recomputes the dead shard's
  // rows from the pristine uploads, so even the degraded runs must track it
  // bit-exactly.
  Simulation reference(data, config, 0, nullptr, nullptr);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    const double reference_loss = reference.RunEpoch();
    EXPECT_DOUBLE_EQ(reference_loss, socket_losses[e]) << "epoch " << e;
    EXPECT_DOUBLE_EQ(reference_loss, injected_losses[e]) << "epoch " << e;
  }
  EXPECT_TRUE(reference.model().item_factors() ==
              socket_sim.model().item_factors());
  EXPECT_TRUE(reference.model().item_factors() ==
              injected_sim.model().item_factors());

  // The ledgers must agree entry for entry: a dead process and an injected
  // outage are the same event to the retry/fallback protocol.
  const FaultStats& socket_ledger = socket_engine.wire_fault_stats();
  EXPECT_EQ(socket_ledger.shard_outages, injected_ledger.shard_outages);
  EXPECT_EQ(socket_ledger.shard_retries, injected_ledger.shard_retries);
  EXPECT_EQ(socket_ledger.fallback_shards, injected_ledger.fallback_shards);
  EXPECT_EQ(socket_ledger.corrupt_messages, injected_ledger.corrupt_messages);

  // And the counts themselves are deterministic: every dead round burns the
  // full retry budget and ends in exactly one local fallback.
  const std::uint64_t dead_rounds = (config.epochs - 1) * rounds_per_epoch;
  EXPECT_EQ(injected_ledger.shard_outages,
            dead_rounds * (config.max_shard_retries + 1));
  EXPECT_EQ(injected_ledger.shard_retries,
            dead_rounds * config.max_shard_retries);
  EXPECT_EQ(injected_ledger.fallback_shards, dead_rounds);
}

// --- reconnect and rejoin ----------------------------------------------------

TEST(SocketShardTransportTest, DisconnectReconnectsWithoutAnOutage) {
  const Dataset data = EngineData();
  FedConfig config = EngineConfig();
  const std::size_t shards = 2;
  DaemonFleet fleet(shards);
  const ShardPlan plan(data.num_items(), shards, ShardPolicy::kContiguousRange);
  SocketShardTransport::Options transport_options;
  transport_options.endpoints = fleet.endpoints();
  SocketShardTransport transport(plan, config.model.dim, transport_options);

  Simulation reference(data, config, 0, nullptr, nullptr);
  Simulation socket_sim(data, config, 0, nullptr, nullptr);
  ShardedRoundEngine sharded(&socket_sim.engine(), &socket_sim.model(),
                             &config, &transport, nullptr);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) loss += sharded.RunRound();
    EXPECT_DOUBLE_EQ(reference.RunEpoch(), loss);
    // Drop a live connection between epochs: the next delivery's
    // EnsureConnected re-handshakes inside the first attempt, so nothing
    // reaches the outage ledger.
    EXPECT_EQ(transport.open_connections(), shards);
    transport.Disconnect(e % shards);
    EXPECT_EQ(transport.open_connections(), shards - 1);
  }
  EXPECT_TRUE(reference.model().item_factors() ==
              socket_sim.model().item_factors());
  EXPECT_EQ(sharded.wire_fault_stats().shard_outages, 0u);
  EXPECT_EQ(sharded.wire_fault_stats().fallback_shards, 0u);
}

TEST(SocketShardTransportTest, RestartedSharddRejoinsViaHello) {
  const Dataset data = EngineData();
  FedConfig config = EngineConfig();
  const std::size_t shards = 2;
  const std::size_t bounced = 1;
  DaemonFleet fleet(shards);
  const ShardPlan plan(data.num_items(), shards, ShardPolicy::kHashed);
  SocketShardTransport::Options transport_options;
  transport_options.endpoints = fleet.endpoints();
  transport_options.run_fingerprint = 0xFEDFEDull;
  SocketShardTransport transport(plan, config.model.dim, transport_options);

  Simulation reference(data, config, 0, nullptr, nullptr);
  Simulation socket_sim(data, config, 0, nullptr, nullptr);
  ShardedRoundEngine sharded(&socket_sim.engine(), &socket_sim.model(),
                             &config, &transport, nullptr);
  for (std::size_t e = 0; e < config.epochs; ++e) {
    if (e == 1) {
      // Bounce one shardd between epochs. The transport's connection is now
      // stale, so the first delivery records one outage, and the retry's
      // reconnect lands on the restarted daemon — a fresh hello handshake.
      fleet.Kill(bounced);
      fleet.Restart(bounced);
    }
    sharded.BeginEpoch(e);
    double loss = 0.0;
    while (sharded.HasNextRound()) loss += sharded.RunRound();
    EXPECT_DOUBLE_EQ(reference.RunEpoch(), loss) << "epoch " << e;
  }
  EXPECT_TRUE(reference.model().item_factors() ==
              socket_sim.model().item_factors());
  // The bounce cost at most one outage+retry and never a fallback: the
  // restarted process rejoined and served.
  const FaultStats& ledger = sharded.wire_fault_stats();
  EXPECT_LE(ledger.shard_outages, 1u);
  EXPECT_EQ(ledger.shard_outages, ledger.shard_retries);
  EXPECT_EQ(ledger.fallback_shards, 0u);
  EXPECT_GE(fleet.daemon(bounced).stats().hellos_accepted, 1u);
  EXPECT_GT(fleet.daemon(bounced).stats().rounds_served, 0u);
}

// --- hello validation --------------------------------------------------------

TEST(SocketShardTransportTest, MismatchedHelloIsRejected) {
  DaemonFleet fleet(1);
  const ShardPlan plan(90, 1, ShardPolicy::kContiguousRange);
  SocketShardTransport::Options transport_options;
  transport_options.endpoints = fleet.endpoints();
  transport_options.run_fingerprint = 42;

  // The first coordinator's hello pins the run: geometry + fingerprint.
  SocketShardTransport good(plan, 8, transport_options);
  good.ExecuteShardRound(0, AggregatorOptions{}, 0, 0, 0, 0).CheckOK();

  // A different fingerprint is a different run — refused.
  SocketShardTransport::Options bad_options = transport_options;
  bad_options.run_fingerprint = 43;
  SocketShardTransport bad_fingerprint(plan, 8, bad_options);
  Status status =
      bad_fingerprint.ExecuteShardRound(0, AggregatorOptions{}, 0, 0, 0, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // A different model dim is a different run too.
  SocketShardTransport bad_dim(plan, 5, transport_options);
  status = bad_dim.ExecuteShardRound(0, AggregatorOptions{}, 0, 0, 0, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);

  // The pinned coordinator still serves.
  good.ExecuteShardRound(0, AggregatorOptions{}, 0, 0, 1, 0).CheckOK();
  EXPECT_GE(fleet.daemon(0).stats().hellos_rejected, 2u);
}

TEST(SocketShardTransportTest, WrongShardIndexIsRejected) {
  // Point shard 1's endpoint at shard 0's daemon: the hello carries
  // shard_index 1, the daemon serves 0, and the handshake must refuse.
  DaemonFleet fleet(1);
  const ShardPlan plan(90, 2, ShardPolicy::kContiguousRange);
  SocketShardTransport::Options transport_options;
  transport_options.endpoints = {fleet.endpoints()[0], fleet.endpoints()[0]};
  SocketShardTransport transport(plan, 8, transport_options);
  const Status status =
      transport.ExecuteShardRound(1, AggregatorOptions{}, 0, 0, 0, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace fedrec
