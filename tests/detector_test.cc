#include "fed/detector.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedrec {
namespace {

ClientUpdate MakeUpdate(std::size_t dim, std::size_t rows, float row_norm,
                        std::uint64_t seed) {
  ClientUpdate update;
  update.item_gradients = SparseRowMatrix(dim);
  Rng rng(seed);
  for (std::size_t r = 0; r < rows; ++r) {
    auto row = update.item_gradients.RowMutable(r * 3 + seed % 3);
    for (auto& v : row) v = static_cast<float>(rng.NextGaussian(0.0, 1.0));
    // Normalize the row to the requested norm.
    float norm = 0.0f;
    for (float v : row) norm += v * v;
    norm = std::sqrt(norm);
    if (norm > 0) {
      for (auto& v : row) v *= row_norm / norm;
    }
  }
  return update;
}

TEST(UploadFeaturesTest, CountsAndNorms) {
  const ClientUpdate update = MakeUpdate(4, 3, 2.0f, 1);
  const UploadFeatures f = ExtractUploadFeatures(update);
  EXPECT_DOUBLE_EQ(f.row_count, 3.0);
  EXPECT_NEAR(f.max_row_norm, 2.0, 1e-5);
  EXPECT_NEAR(f.total_norm, 2.0 * std::sqrt(3.0), 1e-4);
}

TEST(ScreenUploadsTest, TooFewUploadsNotScreened) {
  std::vector<ClientUpdate> updates;
  updates.push_back(MakeUpdate(4, 2, 1.0f, 1));
  updates.push_back(MakeUpdate(4, 20, 50.0f, 2));
  const DetectionReport report = ScreenUploads(updates, 3.0);
  EXPECT_TRUE(report.flagged.empty());
}

TEST(ScreenUploadsTest, HomogeneousPopulationNotFlagged) {
  std::vector<ClientUpdate> updates;
  for (std::uint64_t i = 0; i < 10; ++i) {
    updates.push_back(MakeUpdate(4, 5, 1.0f, i));
  }
  const DetectionReport report = ScreenUploads(updates, 3.5);
  EXPECT_TRUE(report.flagged.empty());
}

TEST(ScreenUploadsTest, ObviousOutlierFlagged) {
  std::vector<ClientUpdate> updates;
  for (std::uint64_t i = 0; i < 9; ++i) {
    updates.push_back(MakeUpdate(4, 4 + i % 3, 1.0f, i));
  }
  updates.push_back(MakeUpdate(4, 40, 30.0f, 99));  // huge norm + many rows
  const DetectionReport report = ScreenUploads(updates, 3.5);
  ASSERT_FALSE(report.flagged.empty());
  EXPECT_EQ(report.flagged.back(), 9u);
}

TEST(ScreenUploadsTest, ZScoresShapeIsUploadsTimesThree) {
  std::vector<ClientUpdate> updates;
  for (std::uint64_t i = 0; i < 5; ++i) {
    updates.push_back(MakeUpdate(4, 3, 1.0f, i));
  }
  const DetectionReport report = ScreenUploads(updates, 3.0);
  EXPECT_EQ(report.z_scores.size(), 15u);
}

TEST(EvaluateDetectionTest, PerfectDetection) {
  DetectionReport report;
  report.flagged = {3, 4};
  const std::vector<bool> truth{false, false, false, true, true};
  const DetectionQuality q = EvaluateDetection(report, truth);
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.0);
}

TEST(EvaluateDetectionTest, MixedDetection) {
  DetectionReport report;
  report.flagged = {0, 3};  // one false positive, one of two attackers found
  const std::vector<bool> truth{false, false, true, true};
  const DetectionQuality q = EvaluateDetection(report, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.5);
  EXPECT_DOUBLE_EQ(q.recall, 0.5);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.5);
}

TEST(EvaluateDetectionTest, NothingFlagged) {
  DetectionReport report;
  const std::vector<bool> truth{true, false};
  const DetectionQuality q = EvaluateDetection(report, truth);
  EXPECT_DOUBLE_EQ(q.precision, 0.0);
  EXPECT_DOUBLE_EQ(q.recall, 0.0);
  EXPECT_DOUBLE_EQ(q.false_positive_rate, 0.0);
}

}  // namespace
}  // namespace fedrec
