#include "attack/target_select.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedrec {
namespace {

Dataset MakeData() {
  SyntheticConfig config;
  config.num_users = 200;
  config.num_items = 300;
  config.mean_interactions_per_user = 25.0;
  config.seed = 17;
  return GenerateSynthetic(config);
}

TEST(TargetSelectTest, CountAndRangeAndDistinct) {
  const Dataset ds = MakeData();
  Rng rng(1);
  for (std::size_t count : {1u, 3u, 10u}) {
    const auto targets =
        SelectTargetItems(ds, count, TargetSelection::kUnpopular, rng);
    EXPECT_EQ(targets.size(), count);
    std::set<std::uint32_t> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), count);
    for (std::uint32_t t : targets) EXPECT_LT(t, ds.num_items());
    EXPECT_TRUE(std::is_sorted(targets.begin(), targets.end()));
  }
}

TEST(TargetSelectTest, UnpopularTargetsComeFromColdTail) {
  const Dataset ds = MakeData();
  const auto popularity = ds.ItemPopularity();
  // Compute the popularity threshold of the coldest 20%.
  std::vector<std::size_t> sorted = popularity;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t threshold = sorted[sorted.size() / 5];

  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    const auto targets =
        SelectTargetItems(ds, 5, TargetSelection::kUnpopular, rng, 0.2);
    for (std::uint32_t t : targets) {
      EXPECT_LE(popularity[t], threshold + 1)
          << "target " << t << " too popular";
    }
  }
}

TEST(TargetSelectTest, PopularModeReturnsHead) {
  const Dataset ds = MakeData();
  Rng rng(3);
  const auto targets = SelectTargetItems(ds, 3, TargetSelection::kPopular, rng);
  const auto order = ds.ItemsByPopularity();
  const std::set<std::uint32_t> expected(order.begin(), order.begin() + 3);
  for (std::uint32_t t : targets) {
    EXPECT_TRUE(expected.count(t)) << t;
  }
}

TEST(TargetSelectTest, RandomModeCoversWholeCatalog) {
  const Dataset ds = MakeData();
  Rng rng(4);
  std::set<std::uint32_t> seen;
  for (int trial = 0; trial < 300; ++trial) {
    for (std::uint32_t t :
         SelectTargetItems(ds, 2, TargetSelection::kRandom, rng)) {
      seen.insert(t);
    }
  }
  // Random draws should reach far beyond any 20% pool.
  EXPECT_GT(seen.size(), ds.num_items() / 2);
}

TEST(TargetSelectTest, DeterministicPerSeed) {
  const Dataset ds = MakeData();
  Rng a(9), b(9);
  EXPECT_EQ(SelectTargetItems(ds, 4, TargetSelection::kUnpopular, a),
            SelectTargetItems(ds, 4, TargetSelection::kUnpopular, b));
}

TEST(TargetSelectTest, InvalidArgumentsAbort) {
  const Dataset ds = MakeData();
  Rng rng(5);
  EXPECT_DEATH(SelectTargetItems(ds, 0, TargetSelection::kRandom, rng), "");
  EXPECT_DEATH(
      SelectTargetItems(ds, ds.num_items() + 1, TargetSelection::kRandom, rng),
      "");
  EXPECT_DEATH(SelectTargetItems(ds, 1, TargetSelection::kUnpopular, rng, 0.0),
               "");
}

TEST(TargetSelectTest, CountLargerThanColdPoolStillWorks) {
  const Dataset ds = MakeData();
  Rng rng(6);
  // Ask for more targets than a tiny cold quantile holds: pool expands.
  const auto targets =
      SelectTargetItems(ds, 20, TargetSelection::kUnpopular, rng, 0.01);
  EXPECT_EQ(targets.size(), 20u);
}

}  // namespace
}  // namespace fedrec
