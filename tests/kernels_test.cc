#include "common/kernels.h"

#include <cstddef>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedrec {
namespace {

/// Lengths crossing every code-path boundary of the kernels: empty, shorter
/// than one SIMD lane group, exactly one group, odd tails, multiples and
/// non-multiples of the 8-lane and 16-lane unroll widths.
const std::size_t kLengths[] = {0, 1, 2, 3, 5, 7, 8, 9, 15, 16, 17,
                                24, 31, 32, 33, 63, 64, 100, 257};

std::vector<float> RandomVector(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.NextGaussian(0.0, 1.0));
  return v;
}

/// abs tolerance scaled mildly with length: each float product is O(1) here,
/// and reassociation error grows with the number of terms.
float Tolerance(std::size_t n) {
  return 1e-5f * static_cast<float>(n > 0 ? n : 1);
}

TEST(KernelsTest, DotMatchesScalarReference) {
  Rng rng(1);
  for (std::size_t n : kLengths) {
    const std::vector<float> a = RandomVector(n, rng);
    const std::vector<float> b = RandomVector(n, rng);
    const float reference = kernels::ScalarDot(a.data(), b.data(), n);
    const float vectorized = kernels::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(vectorized, reference, Tolerance(n)) << "n=" << n;
  }
}

TEST(KernelsTest, DotEmptyIsZero) {
  EXPECT_EQ(kernels::Dot(nullptr, nullptr, 0), 0.0f);
  EXPECT_EQ(kernels::ScalarDot(nullptr, nullptr, 0), 0.0f);
}

TEST(KernelsTest, ShortDotAccumulatesInAscendingOrder) {
  // Lengths below one lane group accumulate in ascending index order like
  // ScalarDot (the detector's tiny-dimension feature extraction depends on
  // every row taking the identical operation sequence). The two compiled
  // functions may still differ by FP contraction (FMA in the dispatched
  // clone), so agreement is to within one fused rounding per term — and a
  // repeated call must be exactly deterministic.
  Rng rng(2);
  for (std::size_t n = 0; n < 8; ++n) {
    const std::vector<float> a = RandomVector(n, rng);
    const std::vector<float> b = RandomVector(n, rng);
    const float once = kernels::Dot(a.data(), b.data(), n);
    EXPECT_NEAR(once, kernels::ScalarDot(a.data(), b.data(), n), 1e-6f)
        << "n=" << n;
    EXPECT_EQ(once, kernels::Dot(a.data(), b.data(), n)) << "n=" << n;
  }
}

TEST(KernelsTest, AxpyMatchesScalarReference) {
  Rng rng(3);
  for (std::size_t n : kLengths) {
    const std::vector<float> x = RandomVector(n, rng);
    const std::vector<float> y0 = RandomVector(n, rng);
    std::vector<float> expected = y0;
    std::vector<float> actual = y0;
    kernels::ScalarAxpy(0.37f, x.data(), expected.data(), n);
    kernels::Axpy(0.37f, x.data(), actual.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(actual[i], expected[i], 1e-6f) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelsTest, ScaleAndFill) {
  Rng rng(4);
  for (std::size_t n : kLengths) {
    std::vector<float> x = RandomVector(n, rng);
    std::vector<float> expected = x;
    for (auto& v : expected) v *= -2.5f;
    kernels::Scale(-2.5f, x.data(), n);
    EXPECT_EQ(x, expected) << "n=" << n;
    kernels::Fill(x.data(), 0.75f, n);
    for (float v : x) EXPECT_EQ(v, 0.75f);
  }
}

TEST(KernelsTest, L2NormSquaredMatchesScalarReference) {
  Rng rng(5);
  for (std::size_t n : kLengths) {
    const std::vector<float> x = RandomVector(n, rng);
    EXPECT_NEAR(kernels::L2NormSquared(x.data(), n),
                kernels::ScalarL2NormSquared(x.data(), n), Tolerance(n))
        << "n=" << n;
  }
}

TEST(KernelsTest, ScoreBlockMatchesScalarReferenceAcrossShapes) {
  Rng rng(6);
  // Users and items straddle the 4-user and 2-item register-tile widths; dims
  // straddle the 8-lane SIMD width, including odd tails.
  const std::size_t user_counts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9};
  const std::size_t item_counts[] = {0, 1, 2, 3, 5, 8, 13};
  const std::size_t dims[] = {1, 3, 7, 8, 9, 16, 31, 32, 33};
  for (std::size_t nu : user_counts) {
    for (std::size_t ni : item_counts) {
      for (std::size_t dim : dims) {
        const std::vector<float> users = RandomVector(nu * dim, rng);
        const std::vector<float> items = RandomVector(ni * dim, rng);
        std::vector<float> expected(nu * ni, -1.0f);
        std::vector<float> actual(nu * ni, -1.0f);
        kernels::ScalarScoreBlock(users.data(), nu, items.data(), ni, dim,
                                  expected.data(), ni);
        kernels::ScoreBlock(users.data(), nu, items.data(), ni, dim,
                            actual.data(), ni);
        for (std::size_t i = 0; i < nu * ni; ++i) {
          EXPECT_NEAR(actual[i], expected[i], Tolerance(dim))
              << "nu=" << nu << " ni=" << ni << " dim=" << dim << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelsTest, PackItemsLayoutAndPadding) {
  Rng rng(9);
  const std::size_t ni = 11, dim = 5;  // final group has 3 valid lanes
  const std::vector<float> items = RandomVector(ni * dim, rng);
  std::vector<float> packed(kernels::PackedItemsSize(ni, dim), -1.0f);
  kernels::PackItems(items.data(), ni, dim, packed.data());
  const std::size_t lanes = kernels::kScoreLanes;
  for (std::size_t j = 0; j < ni; ++j) {
    const std::size_t g = j / lanes, k = j % lanes;
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(packed[(g * dim + d) * lanes + k], items[j * dim + d]);
    }
  }
  // Padding lanes of the final partial group are zeroed.
  for (std::size_t j = ni; j < 2 * lanes; ++j) {
    const std::size_t g = j / lanes, k = j % lanes;
    for (std::size_t d = 0; d < dim; ++d) {
      EXPECT_EQ(packed[(g * dim + d) * lanes + k], 0.0f);
    }
  }
}

TEST(KernelsTest, ScoreBlockPackedMatchesScalarReferenceAcrossShapes) {
  Rng rng(10);
  const std::size_t user_counts[] = {0, 1, 2, 3, 4, 5, 7, 8, 9};
  // Items straddle the 8-lane group width of the packed kernel.
  const std::size_t item_counts[] = {0, 1, 2, 7, 8, 9, 16, 17, 31};
  const std::size_t dims[] = {1, 3, 8, 9, 32, 33};
  for (std::size_t nu : user_counts) {
    for (std::size_t ni : item_counts) {
      for (std::size_t dim : dims) {
        const std::vector<float> users = RandomVector(nu * dim, rng);
        const std::vector<float> items = RandomVector(ni * dim, rng);
        std::vector<float> packed(kernels::PackedItemsSize(ni, dim));
        kernels::PackItems(items.data(), ni, dim, packed.data());
        std::vector<float> expected(nu * ni, -1.0f);
        std::vector<float> actual(nu * ni, -1.0f);
        kernels::ScalarScoreBlock(users.data(), nu, items.data(), ni, dim,
                                  expected.data(), ni);
        kernels::ScoreBlockPacked(users.data(), nu, packed.data(), ni, dim,
                                  actual.data(), ni);
        for (std::size_t i = 0; i < nu * ni; ++i) {
          EXPECT_NEAR(actual[i], expected[i], Tolerance(dim))
              << "nu=" << nu << " ni=" << ni << " dim=" << dim << " i=" << i;
        }
      }
    }
  }
}

TEST(KernelsTest, ScoreBlockPackedDoesNotWritePastValidItems) {
  Rng rng(11);
  const std::size_t nu = 5, ni = 13, dim = 8, stride = 16;
  const std::vector<float> users = RandomVector(nu * dim, rng);
  const std::vector<float> items = RandomVector(ni * dim, rng);
  std::vector<float> packed(kernels::PackedItemsSize(ni, dim));
  kernels::PackItems(items.data(), ni, dim, packed.data());
  std::vector<float> out(nu * stride, -123.0f);
  kernels::ScoreBlockPacked(users.data(), nu, packed.data(), ni, dim,
                            out.data(), stride);
  for (std::size_t u = 0; u < nu; ++u) {
    for (std::size_t j = ni; j < stride; ++j) {
      EXPECT_EQ(out[u * stride + j], -123.0f) << "u=" << u << " j=" << j;
    }
  }
}

TEST(KernelsTest, ScoreBlockRespectsOutputStride) {
  Rng rng(7);
  const std::size_t nu = 5, ni = 3, dim = 32, stride = 10;
  const std::vector<float> users = RandomVector(nu * dim, rng);
  const std::vector<float> items = RandomVector(ni * dim, rng);
  std::vector<float> out(nu * stride, -123.0f);
  kernels::ScoreBlock(users.data(), nu, items.data(), ni, dim, out.data(),
                      stride);
  for (std::size_t u = 0; u < nu; ++u) {
    for (std::size_t j = 0; j < stride; ++j) {
      if (j < ni) {
        const float expected = kernels::ScalarDot(
            users.data() + u * dim, items.data() + j * dim, dim);
        EXPECT_NEAR(out[u * stride + j], expected, Tolerance(dim));
      } else {
        // Padding between rows is never written.
        EXPECT_EQ(out[u * stride + j], -123.0f);
      }
    }
  }
}

TEST(KernelsTest, ScoreBlockAgreesWithDotKernel) {
  // The evaluator assumes a block row equals per-item kernels::Dot output
  // (remainder users/items take exactly that path; tiles must agree too).
  Rng rng(8);
  const std::size_t nu = 9, ni = 13, dim = 32;
  const std::vector<float> users = RandomVector(nu * dim, rng);
  const std::vector<float> items = RandomVector(ni * dim, rng);
  std::vector<float> out(nu * ni);
  kernels::ScoreBlock(users.data(), nu, items.data(), ni, dim, out.data(), ni);
  for (std::size_t u = 0; u < nu; ++u) {
    for (std::size_t j = 0; j < ni; ++j) {
      const float via_dot =
          kernels::Dot(users.data() + u * dim, items.data() + j * dim, dim);
      // Tiled and single-row paths may reduce lanes in different orders, so
      // agreement is within rounding, not bitwise.
      EXPECT_NEAR(out[u * ni + j], via_dot, Tolerance(dim))
          << "u=" << u << " j=" << j;
    }
  }
}

}  // namespace
}  // namespace fedrec
