#include "data/serialize.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "data/synthetic.h"

namespace fedrec {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class SerializeTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }
  std::string Track(std::string path) {
    paths_.push_back(path);
    return path;
  }
  std::vector<std::string> paths_;
};

TEST_F(SerializeTest, WriterReaderPrimitivesRoundTrip) {
  BinaryWriter writer;
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(1234567890123ULL);
  writer.WriteF32(3.25f);
  writer.WriteString("hello");

  BinaryReader reader(writer.buffer());
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 1234567890123ULL);
  EXPECT_FLOAT_EQ(reader.ReadF32().value(), 3.25f);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_TRUE(reader.exhausted());
}

TEST_F(SerializeTest, ReaderRejectsTruncatedStream) {
  BinaryWriter writer;
  writer.WriteU32(1);
  BinaryReader reader(writer.buffer());
  EXPECT_TRUE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU32().ok());
  EXPECT_FALSE(reader.ReadU64().ok());
  EXPECT_FALSE(reader.ReadString().ok());
}

TEST_F(SerializeTest, EmptyReaderFailsEveryRead) {
  BinaryReader reader;
  EXPECT_FALSE(reader.ReadU32().ok());
  EXPECT_TRUE(reader.exhausted());
}

TEST_F(SerializeTest, F32ArrayBulkRoundTrip) {
  const std::vector<float> values = {1.5f, -2.25f, 0.0f, 1e-7f, 3e8f};
  BinaryWriter writer;
  writer.WriteF32Array(values);
  // Bulk write produces the exact bytes of the per-element loop.
  BinaryWriter reference;
  for (float v : values) reference.WriteF32(v);
  EXPECT_EQ(writer.buffer(), reference.buffer());

  std::vector<float> out(values.size(), -1.0f);
  BinaryReader reader(writer.buffer());
  reader.ReadF32Array(out).CheckOK();
  EXPECT_EQ(out, values);
  EXPECT_TRUE(reader.exhausted());
}

// Empty spans have a null data() pointer; passing that straight to memcpy /
// string::append is undefined behavior even with a zero count (the ubsan
// preset catches the regression). Zero-length array IO must be a no-op.
TEST_F(SerializeTest, F32ArrayEmptyRoundTripIsNoOp) {
  BinaryWriter writer;
  writer.WriteF32Array(std::span<const float>());
  EXPECT_TRUE(writer.buffer().empty());
  writer.WriteU32(9);

  BinaryReader reader(writer.buffer());
  reader.ReadF32Array(std::span<float>()).CheckOK();
  EXPECT_EQ(reader.ReadU32().value(), 9u);
  EXPECT_TRUE(reader.exhausted());
}

TEST_F(SerializeTest, EmptyReaderEmptyArrayReadSucceeds) {
  BinaryReader reader;
  reader.ReadF32Array(std::span<float>()).CheckOK();
  EXPECT_TRUE(reader.exhausted());
}

TEST_F(SerializeTest, F32ArrayTruncatedReadFails) {
  BinaryWriter writer;
  writer.WriteF32(1.0f);
  std::vector<float> out(2);
  BinaryReader reader(writer.buffer());
  const Status status = reader.ReadF32Array(out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST_F(SerializeTest, ViewReaderParsesWithoutOwning) {
  BinaryWriter writer;
  writer.WriteU32(42);
  writer.WriteU64(7);
  BinaryReader reader = BinaryReader::View(writer.buffer());
  EXPECT_EQ(reader.ReadU32().value(), 42u);
  EXPECT_EQ(reader.ReadU64().value(), 7u);
  EXPECT_TRUE(reader.exhausted());
}

TEST_F(SerializeTest, PeekBytesDoesNotConsume) {
  BinaryWriter writer;
  writer.WriteU32(0xAABBCCDD);
  BinaryReader reader = BinaryReader::View(writer.buffer());
  Result<std::string_view> peeked = reader.PeekBytes(4);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked.value().size(), 4u);
  EXPECT_EQ(reader.position(), 0u);
  EXPECT_EQ(reader.ReadU32().value(), 0xAABBCCDDu);
  EXPECT_FALSE(reader.PeekBytes(1).ok());
}

TEST_F(SerializeTest, WriterClearRetainsBytesSemantics) {
  BinaryWriter writer;
  writer.WriteU64(123);
  const std::string first = writer.buffer();
  writer.Clear();
  EXPECT_TRUE(writer.buffer().empty());
  writer.WriteU64(123);
  EXPECT_EQ(writer.buffer(), first);
}

TEST_F(SerializeTest, MatrixRoundTrip) {
  Rng rng(1);
  Matrix original(7, 5);
  original.FillGaussian(rng, 0.0f, 1.0f);
  const std::string path = Track(TempPath("fedrec_matrix.bin"));
  SaveMatrix(original, path).CheckOK();
  Result<Matrix> loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded.value() == original);
}

TEST_F(SerializeTest, EmptyMatrixRoundTrip) {
  const std::string path = Track(TempPath("fedrec_matrix_empty.bin"));
  SaveMatrix(Matrix(), path).CheckOK();
  Result<Matrix> loaded = LoadMatrix(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST_F(SerializeTest, MatrixRejectsForeignFile) {
  const std::string path = Track(TempPath("fedrec_not_matrix.bin"));
  WriteStringToFile(path, "this is not a matrix file at all").CheckOK();
  Result<Matrix> loaded = LoadMatrix(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(SerializeTest, MatrixRejectsPayloadMismatch) {
  Matrix m(2, 2);
  const std::string path = Track(TempPath("fedrec_matrix_cut.bin"));
  SaveMatrix(m, path).CheckOK();
  // Truncate the payload by a few bytes.
  std::string content = ReadFileToString(path).value();
  content.resize(content.size() - 3);
  WriteStringToFile(path, content).CheckOK();
  EXPECT_FALSE(LoadMatrix(path).ok());
}

TEST_F(SerializeTest, DatasetRoundTrip) {
  SyntheticConfig config;
  config.num_users = 25;
  config.num_items = 40;
  config.mean_interactions_per_user = 6.0;
  config.seed = 2;
  const Dataset original = GenerateSynthetic(config);
  const std::string path = Track(TempPath("fedrec_dataset.bin"));
  SaveDataset(original, path).CheckOK();
  Result<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().name(), original.name());
  EXPECT_EQ(loaded.value().num_users(), original.num_users());
  EXPECT_EQ(loaded.value().num_items(), original.num_items());
  EXPECT_EQ(loaded.value().num_interactions(), original.num_interactions());
  for (std::size_t u = 0; u < original.num_users(); ++u) {
    EXPECT_EQ(loaded.value().UserItems(u), original.UserItems(u));
  }
}

TEST_F(SerializeTest, DatasetRejectsMatrixFile) {
  const std::string path = Track(TempPath("fedrec_cross_format.bin"));
  SaveMatrix(Matrix(2, 2), path).CheckOK();
  Result<Dataset> loaded = LoadDataset(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(SerializeTest, MissingFileIsIOError) {
  EXPECT_EQ(LoadMatrix("/nonexistent/m.bin").status().code(),
            StatusCode::kIOError);
  EXPECT_EQ(LoadDataset("/nonexistent/d.bin").status().code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace fedrec
