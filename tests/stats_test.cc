#include "data/stats.h"

#include <gtest/gtest.h>

#include "data/synthetic.h"

namespace fedrec {
namespace {

TEST(GiniTest, UniformCountsZero) {
  EXPECT_NEAR(GiniCoefficient({5, 5, 5, 5}), 0.0, 1e-9);
}

TEST(GiniTest, ExtremeConcentration) {
  // One item holds everything: Gini -> (n-1)/n.
  const double g = GiniCoefficient({0, 0, 0, 100});
  EXPECT_NEAR(g, 0.75, 1e-9);
}

TEST(GiniTest, KnownValue) {
  // counts {1,3}: gini = (2*(1*1+2*3))/(2*4) - 3/2 = 14/8 - 1.5 = 0.25.
  EXPECT_NEAR(GiniCoefficient({1, 3}), 0.25, 1e-9);
}

TEST(GiniTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0}), 0.0);
}

TEST(ComputeStatsTest, MatchesDataset) {
  std::vector<Interaction> tuples{{0, 0}, {0, 1}, {1, 0}, {2, 0}};
  auto ds = Dataset::FromInteractions("s", 3, 4, std::move(tuples));
  ASSERT_TRUE(ds.ok());
  const DatasetStats stats = ComputeStats(ds.value());
  EXPECT_EQ(stats.name, "s");
  EXPECT_EQ(stats.num_users, 3u);
  EXPECT_EQ(stats.num_items, 4u);
  EXPECT_EQ(stats.num_interactions, 4u);
  EXPECT_DOUBLE_EQ(stats.avg_interactions_per_user, 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.sparsity, 1.0 - 4.0 / 12.0);
  EXPECT_EQ(stats.max_user_degree, 2u);
  EXPECT_EQ(stats.min_user_degree, 1u);
}

TEST(ComputeStatsTest, SyntheticPresetSparsityBallpark) {
  // Table II reports 93.70% sparsity for ML-100K; the calibrated generator
  // should land in the same region (within a couple of points).
  SyntheticConfig config = MovieLens100KConfig(3);
  const Dataset ds = GenerateSynthetic(config);
  const DatasetStats stats = ComputeStats(ds);
  EXPECT_NEAR(stats.sparsity, 0.937, 0.025);
  EXPECT_NEAR(stats.avg_interactions_per_user, 106.0, 15.0);
}

TEST(ComputeStatsTest, SteamPresetIsSparsest) {
  const Dataset steam = GenerateSynthetic(Steam200KConfig(4));
  const DatasetStats stats = ComputeStats(steam);
  // Table II: 99.40% sparsity.
  EXPECT_GT(stats.sparsity, 0.985);
}

TEST(ComputeStatsTest, Top10ShareBounded) {
  const Dataset ds = GenerateSynthetic(MovieLens100KConfig(5));
  const DatasetStats stats = ComputeStats(ds);
  EXPECT_GT(stats.top10_percent_share, 0.0);
  EXPECT_LE(stats.top10_percent_share, 1.0);
}

}  // namespace
}  // namespace fedrec
