#include "model/bpr.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"
#include "data/synthetic.h"

namespace fedrec {
namespace {

TEST(SampleNegativesTest, ExcludesPositivesAndDistinct) {
  Rng rng(1);
  const std::vector<std::uint32_t> positives{1, 3, 5, 7};
  const auto negatives = SampleNegatives(positives, 20, 10, rng);
  EXPECT_EQ(negatives.size(), 10u);
  std::set<std::uint32_t> unique(negatives.begin(), negatives.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::uint32_t n : negatives) {
    EXPECT_FALSE(std::binary_search(positives.begin(), positives.end(), n));
    EXPECT_LT(n, 20u);
  }
}

TEST(SampleNegativesTest, DenseRegimeExact) {
  Rng rng(2);
  const std::vector<std::uint32_t> positives{0, 1, 2};
  // Complement has 2 items; request 5 -> get exactly the 2 available.
  const auto negatives = SampleNegatives(positives, 5, 5, rng);
  std::vector<std::uint32_t> sorted = negatives;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::uint32_t>{3, 4}));
}

TEST(SampleNegativesTest, AllItemsPositiveYieldsEmpty) {
  Rng rng(3);
  const std::vector<std::uint32_t> positives{0, 1, 2};
  EXPECT_TRUE(SampleNegatives(positives, 3, 2, rng).empty());
}

TEST(SampleNegativesTest, ZeroCount) {
  Rng rng(4);
  EXPECT_TRUE(SampleNegatives({0}, 10, 0, rng).empty());
}

TEST(BprPairTest, LossAndCoefficientDefinitions) {
  // At x=0: loss = -ln(0.5) = ln 2; dL/dx = -sigmoid(0) = -0.5.
  const auto r = BprPairLossAndCoefficient(0.0);
  EXPECT_NEAR(r.loss, std::log(2.0), 1e-12);
  EXPECT_NEAR(r.coefficient, -0.5, 1e-12);
  // Large positive difference: loss ~ 0, coefficient ~ 0.
  const auto good = BprPairLossAndCoefficient(20.0);
  EXPECT_NEAR(good.loss, 0.0, 1e-8);
  EXPECT_NEAR(good.coefficient, 0.0, 1e-8);
  // Large negative difference: loss ~ |x|, coefficient ~ -1.
  const auto bad = BprPairLossAndCoefficient(-20.0);
  EXPECT_NEAR(bad.loss, 20.0, 1e-7);
  EXPECT_NEAR(bad.coefficient, -1.0, 1e-8);
}

TEST(BprPairTest, CoefficientIsLossDerivative) {
  const double h = 1e-6;
  for (double x : {-3.0, -0.5, 0.0, 0.7, 2.0}) {
    const double numeric = (BprPairLossAndCoefficient(x + h).loss -
                            BprPairLossAndCoefficient(x - h).loss) /
                           (2 * h);
    EXPECT_NEAR(BprPairLossAndCoefficient(x).coefficient, numeric, 1e-5);
  }
}

/// Finite-difference check of the full local gradient: perturb every
/// parameter and compare against the analytic gradients.
TEST(LocalBprGradientsTest, MatchesFiniteDifferences) {
  Rng rng(5);
  const std::size_t dim = 4, num_items = 6;
  Matrix items(num_items, dim);
  items.FillGaussian(rng, 0.0f, 0.5f);
  std::vector<float> user(dim);
  for (auto& v : user) v = static_cast<float>(rng.NextGaussian(0.0, 0.5));
  const std::vector<std::uint32_t> positives{0, 2};
  const std::vector<std::uint32_t> negatives{1, 4};

  auto loss_at = [&](const std::vector<float>& u, const Matrix& V) {
    double total = 0.0;
    for (std::size_t p = 0; p < positives.size(); ++p) {
      const double x = static_cast<double>(Dot(u, V.Row(positives[p]))) -
                       static_cast<double>(Dot(u, V.Row(negatives[p])));
      total += BprPairLossAndCoefficient(x).loss;
    }
    return total;
  };

  const LocalBprGradients grads =
      ComputeLocalBprGradients(user, items, positives, negatives, 0.0f);
  EXPECT_EQ(grads.pair_count, 2u);
  EXPECT_NEAR(grads.loss, loss_at(user, items), 1e-6);

  const double h = 1e-3;
  // User gradient.
  for (std::size_t d = 0; d < dim; ++d) {
    std::vector<float> up = user, down = user;
    up[d] += static_cast<float>(h);
    down[d] -= static_cast<float>(h);
    const double numeric = (loss_at(up, items) - loss_at(down, items)) / (2 * h);
    EXPECT_NEAR(grads.user_gradient[d], numeric, 5e-3) << "dim " << d;
  }
  // Item gradients for every touched row.
  for (std::uint32_t row : {0u, 1u, 2u, 4u}) {
    ASSERT_TRUE(grads.item_gradients.Contains(row));
    for (std::size_t d = 0; d < dim; ++d) {
      Matrix up = items, down = items;
      up.At(row, d) += static_cast<float>(h);
      down.At(row, d) -= static_cast<float>(h);
      const double numeric = (loss_at(user, up) - loss_at(user, down)) / (2 * h);
      EXPECT_NEAR(grads.item_gradients.Row(row)[d], numeric, 5e-3)
          << "row " << row << " dim " << d;
    }
  }
  // Untouched rows have no gradient entry.
  EXPECT_FALSE(grads.item_gradients.Contains(3));
  EXPECT_FALSE(grads.item_gradients.Contains(5));
}

TEST(LocalBprGradientsTest, L2RegularizationAddsParameterTerm) {
  Rng rng(6);
  Matrix items(4, 3);
  items.FillGaussian(rng, 0.0f, 0.5f);
  std::vector<float> user{0.5f, -0.2f, 0.1f};
  const std::vector<std::uint32_t> pos{0};
  const std::vector<std::uint32_t> neg{1};
  const auto without = ComputeLocalBprGradients(user, items, pos, neg, 0.0f);
  const auto with = ComputeLocalBprGradients(user, items, pos, neg, 0.1f);
  for (std::size_t d = 0; d < 3; ++d) {
    EXPECT_NEAR(with.user_gradient[d], without.user_gradient[d] + 0.1f * user[d],
                1e-6);
    EXPECT_NEAR(with.item_gradients.Row(0)[d],
                without.item_gradients.Row(0)[d] + 0.1f * items.At(0, d), 1e-6);
  }
}

TEST(LocalBprGradientsTest, UnequalListsZipToShorter) {
  Rng rng(7);
  Matrix items(5, 2);
  items.FillGaussian(rng, 0.0f, 0.5f);
  std::vector<float> user{1.0f, 1.0f};
  const auto grads =
      ComputeLocalBprGradients(user, items, {0, 1, 2}, {3}, 0.0f);
  EXPECT_EQ(grads.pair_count, 1u);
}

TEST(TrainBprTest, LossDecreasesOnStructuredData) {
  SyntheticConfig config;
  config.num_users = 80;
  config.num_items = 120;
  config.mean_interactions_per_user = 15.0;
  config.seed = 8;
  const Dataset data = GenerateSynthetic(config);

  Rng rng(9);
  Matrix users(data.num_users(), 16);
  Matrix items(data.num_items(), 16);
  users.FillGaussian(rng, 0.0f, 0.1f);
  items.FillGaussian(rng, 0.0f, 0.1f);

  BprTrainOptions options;
  options.learning_rate = 0.05f;
  const double first = TrainBpr(users, items, data, options, 1, rng);
  const double later = TrainBpr(users, items, data, options, 15, rng);
  EXPECT_LT(later, first);
  EXPECT_LT(later, std::log(2.0));  // better than random ranking
}

TEST(TrainBprTest, FrozenItemsStayFixed) {
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 40;
  config.mean_interactions_per_user = 8.0;
  config.seed = 10;
  const Dataset data = GenerateSynthetic(config);

  Rng rng(11);
  Matrix users(data.num_users(), 8);
  Matrix items(data.num_items(), 8);
  users.FillGaussian(rng, 0.0f, 0.1f);
  items.FillGaussian(rng, 0.0f, 0.1f);
  const Matrix items_before = items;
  const Matrix users_before = users;

  BprTrainOptions options;
  options.update_items = false;
  TrainBpr(users, items, data, options, 3, rng);
  EXPECT_TRUE(items == items_before);   // V untouched
  EXPECT_FALSE(users == users_before);  // U trained
}

TEST(TrainBprTest, FrozenUsersStayFixed) {
  SyntheticConfig config;
  config.num_users = 30;
  config.num_items = 40;
  config.seed = 12;
  const Dataset data = GenerateSynthetic(config);

  Rng rng(13);
  Matrix users(data.num_users(), 8);
  Matrix items(data.num_items(), 8);
  users.FillGaussian(rng, 0.0f, 0.1f);
  items.FillGaussian(rng, 0.0f, 0.1f);
  const Matrix users_before = users;

  BprTrainOptions options;
  options.update_users = false;
  TrainBpr(users, items, data, options, 2, rng);
  EXPECT_TRUE(users == users_before);
}

TEST(TrainBprTest, EmptyInteractionsNoOp) {
  Matrix users(3, 4), items(5, 4);
  BprTrainOptions options;
  Rng rng(14);
  const double loss = TrainBprEpoch(users, items, {}, {{}, {}, {}}, options, rng);
  EXPECT_DOUBLE_EQ(loss, 0.0);
}

}  // namespace
}  // namespace fedrec
