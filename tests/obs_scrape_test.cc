/// End-to-end scrape test: forks a real `fedrec_shardd` process (path
/// injected by CMake as FEDREC_SHARDD_BIN), sends FRNT kStatsRequest frames
/// over a live TCP connection, and asserts the kStatsReply exposition text —
/// the same wire round trip `tools/obs/fedrec_stats` performs against a
/// deployed fleet, pinned here as a test contract: a shardd must answer a
/// scrape pre-hello, keep the connection open across scrapes, and name its
/// gauges with the shard label.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/socket.h"

namespace fedrec {
namespace {

pid_t Spawn(const std::string& binary, const std::vector<std::string>& args,
            const std::string& stdout_path) {
  // Drop any log left by a previous run before forking: WaitForPort polls
  // this path from the parent, and a stale "listening on N" line would win
  // the race against the child's O_TRUNC.
  ::unlink(stdout_path.c_str());
  std::vector<std::string> storage;
  storage.push_back(binary);
  for (const std::string& arg : args) storage.push_back(arg);
  std::vector<char*> argv;
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int fd =
        ::open(stdout_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    ::execv(binary.c_str(), argv.data());
    _exit(127);
  }
  return pid;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::uint16_t WaitForPort(const std::string& stdout_path) {
  constexpr char kNeedle[] = "listening on ";
  for (int attempt = 0; attempt < 2000; ++attempt) {
    const std::string text = ReadFile(stdout_path);
    const std::size_t pos = text.find(kNeedle);
    if (pos != std::string::npos && text.find('\n', pos) != std::string::npos) {
      return static_cast<std::uint16_t>(
          std::atoi(text.c_str() + pos + sizeof(kNeedle) - 1));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ADD_FAILURE() << "shardd never printed its port: " << stdout_path;
  return 0;
}

/// One kStatsRequest round trip on an already connected socket. The
/// connection stays open, so calling this twice exercises repeat scrapes.
Status ScrapeOn(int sock, std::string& text) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kStatsRequest, 0, header);
  const std::array<std::string_view, 1> pieces = {
      std::string_view(header, sizeof(header))};
  Status status = WriteAllVec(sock, pieces);
  FrameReader reader;
  while (status.ok()) {
    FrameView frame;
    bool has_frame = false;
    status = reader.Next(frame, has_frame);
    if (!status.ok()) break;
    if (has_frame) {
      if (frame.type == FrameType::kHeartbeat) continue;
      if (frame.type != FrameType::kStatsReply) {
        return Status::Corruption("expected kStatsReply");
      }
      text.assign(frame.payload);
      return Status::OK();
    }
    char* tail = reader.PrepareWrite(64 * 1024);
    ReadOutcome outcome;
    status = ReadSome(sock, tail, reader.writable(), outcome);
    if (status.ok() && outcome.eof) {
      status = Status::IOError("peer closed before replying");
    }
    if (status.ok()) reader.CommitWrite(outcome.bytes);
  }
  return status;
}

TEST(ObsScrapeTest, LiveSharddAnswersStatsRequestsOverTcp) {
  const std::string log = ::testing::TempDir() + "obs_scrape_shardd.log";
  const pid_t pid =
      Spawn(FEDREC_SHARDD_BIN, {"--shard=3", "--port=0"}, log);
  ASSERT_GT(pid, 0);
  const std::uint16_t port = WaitForPort(log);
  ASSERT_NE(port, 0);

  Result<int> fd = TcpConnect("127.0.0.1", port);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  int sock = fd.value();
  ASSERT_TRUE(SetIoTimeout(sock, 5000).ok());

  // First scrape: pre-hello, empty-payload request must be served, and the
  // shardd's serving gauges must carry its shard label.
  std::string text;
  Status status = ScrapeOn(sock, text);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(text.find("fedrec_shardd_rounds_served{shard=\"3\"} 0"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fedrec_shardd_connections_accepted{shard=\"3\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("fedrec_heartbeat_rtt_ms_count{shard=\"3\"} 0"),
            std::string::npos)
      << text;

  // Second scrape on the same connection: the reply to the first one staged
  // a frame on the daemon's send queue, so the net counters must now exist
  // and be nonzero.
  std::string second;
  status = ScrapeOn(sock, second);
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::size_t frames_pos = second.find("fedrec_net_frames_staged_total ");
  ASSERT_NE(frames_pos, std::string::npos) << second;
  EXPECT_EQ(second.find("fedrec_net_frames_staged_total 0"),
            std::string::npos)
      << second;

  CloseSocket(sock);
  ::kill(pid, SIGTERM);
  int wait_status = 0;
  while (::waitpid(pid, &wait_status, 0) < 0 && errno == EINTR) {
  }
}

}  // namespace
}  // namespace fedrec
