#include "common/csv.h"

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParseDelimitedTest, BasicRows) {
  const auto rows = ParseDelimited("a,b\n1,2\n", ',');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2"}));
}

TEST(ParseDelimitedTest, SkipsEmptyLinesAndHandlesCrLf) {
  const auto rows = ParseDelimited("a\tb\r\n\r\n\nc\td\r\n", '\t');
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(ParseDelimitedTest, SkipHeaderDropsFirstNonEmptyLine) {
  const auto rows = ParseDelimited("\nheader,x\n1,2\n", ',', true);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"1", "2"}));
}

TEST(ParseDelimitedTest, NoTrailingNewline) {
  const auto rows = ParseDelimited("1,2", ',');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"1", "2"}));
}

TEST(ParseDelimitedTest, EmptyContentYieldsNoRows) {
  EXPECT_TRUE(ParseDelimited("", ',').empty());
  EXPECT_TRUE(ParseDelimited("\n\n", ',').empty());
}

TEST(ParseDelimitedTest, PreservesEmptyFields) {
  const auto rows = ParseDelimited("a,,c\n", ',');
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "", "c"}));
}

TEST(SplitOnSeparatorTest, MultiCharSeparator) {
  const auto parts = SplitOnSeparator("1::50::5::12345", "::");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "1");
  EXPECT_EQ(parts[1], "50");
  EXPECT_EQ(parts[3], "12345");
}

TEST(SplitOnSeparatorTest, NoSeparatorPresent) {
  const auto parts = SplitOnSeparator("plain", "::");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "plain");
}

TEST(SplitOnSeparatorTest, EmptySeparatorYieldsWholeLine) {
  const auto parts = SplitOnSeparator("abc", "");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(FileRoundTripTest, WriteThenRead) {
  const std::string path = TempPath("fedrec_csv_roundtrip.csv");
  const std::vector<CsvRow> rows{{"1", "10"}, {"2", "20"}};
  ASSERT_TRUE(WriteDelimitedFile(path, ',', rows).ok());
  const auto read = ReadDelimitedFile(path, ',');
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.value(), rows);
  std::remove(path.c_str());
}

TEST(FileRoundTripTest, StringRoundTrip) {
  const std::string path = TempPath("fedrec_string_roundtrip.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  const auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello\nworld");
  std::remove(path.c_str());
}

TEST(FileErrorsTest, MissingFileReturnsIOError) {
  const auto result = ReadFileToString("/nonexistent/dir/file.csv");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIOError);
  const auto rows = ReadDelimitedFile("/nonexistent/dir/file.csv", ',');
  EXPECT_FALSE(rows.ok());
}

TEST(FileErrorsTest, UnwritablePathReturnsIOError) {
  const auto status = WriteStringToFile("/nonexistent/dir/file.txt", "x");
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace fedrec
