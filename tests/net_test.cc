#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/chaos_proxy.h"
#include "net/deadline_wheel.h"
#include "net/epoll_loop.h"
#include "net/frame.h"
#include "net/liveness.h"
#include "net/socket.h"

namespace fedrec {
namespace {

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(type, payload.size(), header);
  out.append(header, kFrameHeaderBytes);
  out.append(payload);
  return out;
}

/// Drains every complete frame currently buffered in `reader`.
std::vector<std::pair<FrameType, std::string>> DrainFrames(
    FrameReader& reader) {
  std::vector<std::pair<FrameType, std::string>> frames;
  for (;;) {
    FrameView view;
    bool has_frame = false;
    Status status = reader.Next(view, has_frame);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok() || !has_frame) break;
    frames.emplace_back(view.type, std::string(view.payload));
  }
  return frames;
}

// --- frame header codec ------------------------------------------------------

TEST(FrameHeaderTest, RoundTripsEveryType) {
  for (const FrameType type :
       {FrameType::kHello, FrameType::kHelloAck, FrameType::kShardRound,
        FrameType::kShardDelta, FrameType::kError, FrameType::kClientUpload,
        FrameType::kRoundAck, FrameType::kShutdown, FrameType::kHeartbeat,
        FrameType::kRetryAfter}) {
    char header[kFrameHeaderBytes];
    EncodeFrameHeader(type, 0xBEEFCAFEull & (kMaxFramePayload - 1), header);
    FrameType decoded_type = FrameType::kError;
    std::uint64_t payload_bytes = 0;
    const Status status =
        DecodeFrameHeader(header, decoded_type, payload_bytes);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded_type, type);
    EXPECT_EQ(payload_bytes, 0xBEEFCAFEull & (kMaxFramePayload - 1));
  }
}

TEST(FrameHeaderTest, BadMagicIsCorruption) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kHello, 4, header);
  header[0] ^= 0x5A;
  FrameType type = FrameType::kError;
  std::uint64_t payload_bytes = 0;
  const Status status = DecodeFrameHeader(header, type, payload_bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(FrameHeaderTest, UnknownTypeIsCorruption) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(static_cast<FrameType>(999), 0, header);
  FrameType type = FrameType::kError;
  std::uint64_t payload_bytes = 0;
  const Status status = DecodeFrameHeader(header, type, payload_bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(FrameHeaderTest, OversizedLengthIsCorruption) {
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kShardRound, kMaxFramePayload + 1, header);
  FrameType type = FrameType::kError;
  std::uint64_t payload_bytes = 0;
  const Status status = DecodeFrameHeader(header, type, payload_bytes);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

// --- FrameReader reassembly --------------------------------------------------

TEST(FrameReaderTest, SingleFeedYieldsFrame) {
  FrameReader reader;
  reader.Feed(EncodeFrame(FrameType::kShardDelta, "payload-bytes"));
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, FrameType::kShardDelta);
  EXPECT_EQ(frames[0].second, "payload-bytes");
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(FrameReaderTest, EmptyPayloadFrame) {
  FrameReader reader;
  reader.Feed(EncodeFrame(FrameType::kHelloAck, ""));
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, FrameType::kHelloAck);
  EXPECT_TRUE(frames[0].second.empty());
}

TEST(FrameReaderTest, MultipleFramesInOneFeed) {
  std::string stream;
  stream += EncodeFrame(FrameType::kHello, "alpha");
  stream += EncodeFrame(FrameType::kShardRound, "");
  stream += EncodeFrame(FrameType::kError, "bravo-charlie");
  FrameReader reader;
  reader.Feed(stream);
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0].second, "alpha");
  EXPECT_EQ(frames[1].first, FrameType::kShardRound);
  EXPECT_EQ(frames[2].second, "bravo-charlie");
}

TEST(FrameReaderTest, FragmentationAtEveryByteBoundaryIsBitIdentical) {
  // TCP may split the stream anywhere. Cut a two-frame stream at every byte
  // boundary and check the reassembled frames match the one-shot decode.
  std::string payload_a(37, '\0');
  for (std::size_t i = 0; i < payload_a.size(); ++i) {
    payload_a[i] = static_cast<char>(i * 7 + 1);
  }
  std::string stream;
  stream += EncodeFrame(FrameType::kShardRound, payload_a);
  stream += EncodeFrame(FrameType::kShardDelta, "tail");

  FrameReader reference;
  reference.Feed(stream);
  const auto expected = DrainFrames(reference);
  ASSERT_EQ(expected.size(), 2u);

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReader reader;
    reader.Feed(std::string_view(stream).substr(0, cut));
    auto frames = DrainFrames(reader);
    reader.Feed(std::string_view(stream).substr(cut));
    for (auto& frame : DrainFrames(reader)) frames.push_back(std::move(frame));
    ASSERT_EQ(frames.size(), expected.size()) << "cut=" << cut;
    for (std::size_t f = 0; f < frames.size(); ++f) {
      EXPECT_EQ(frames[f].first, expected[f].first) << "cut=" << cut;
      EXPECT_EQ(frames[f].second, expected[f].second) << "cut=" << cut;
    }
  }
}

TEST(FrameReaderTest, ByteAtATimeFeedReassembles) {
  const std::string stream = EncodeFrame(FrameType::kClientUpload, "drip-fed");
  FrameReader reader;
  std::vector<std::pair<FrameType, std::string>> frames;
  for (char byte : stream) {
    reader.Feed(std::string_view(&byte, 1));
    for (auto& frame : DrainFrames(reader)) frames.push_back(std::move(frame));
  }
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, "drip-fed");
}

TEST(FrameReaderTest, PrepareCommitPathMatchesFeed) {
  // The socket read path deposits bytes directly into the retained buffer.
  const std::string stream = EncodeFrame(FrameType::kRoundAck, "via-prepare");
  FrameReader reader;
  std::size_t offset = 0;
  while (offset < stream.size()) {
    const std::size_t chunk = std::min<std::size_t>(5, stream.size() - offset);
    char* dst = reader.PrepareWrite(chunk);
    ASSERT_GE(reader.writable(), chunk);
    std::memcpy(dst, stream.data() + offset, chunk);
    reader.CommitWrite(chunk);
    offset += chunk;
  }
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, "via-prepare");
}

TEST(FrameReaderTest, CorruptHeaderPoisonsUntilReset) {
  FrameReader reader;
  std::string bad = EncodeFrame(FrameType::kHello, "x");
  bad[1] ^= 0x33;  // damage the magic
  reader.Feed(bad);
  FrameView view;
  bool has_frame = false;
  Status status = reader.Next(view, has_frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // Framing is lost: the reader stays poisoned even for pristine bytes.
  reader.Feed(EncodeFrame(FrameType::kHello, "y"));
  status = reader.Next(view, has_frame);
  ASSERT_FALSE(status.ok());
  // Reset clears the poison and the buffered garbage.
  reader.Reset();
  EXPECT_EQ(reader.pending(), 0u);
  reader.Feed(EncodeFrame(FrameType::kHello, "z"));
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, "z");
}

// --- SendQueue ---------------------------------------------------------------

/// A nonblocking socketpair with a tiny send buffer so Flush hits short
/// writes and EAGAIN long before a frame fits in one write(2).
struct TinyPipe {
  int writer = -1;
  int reader = -1;
  TinyPipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    writer = fds[0];
    reader = fds[1];
    const int tiny = 1;  // kernel clamps to its minimum, still far below 1MB
    ::setsockopt(writer, SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));
    ::setsockopt(reader, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
    SetNonBlocking(writer).CheckOK();
    SetNonBlocking(reader).CheckOK();
  }
  ~TinyPipe() {
    CloseSocket(writer);
    CloseSocket(reader);
  }
};

TEST(SendQueueTest, ShortWritesDrainAcrossFlushes) {
  TinyPipe pipe;
  std::string payload(1 << 20, '\0');  // 1 MiB >> any SO_SNDBUF minimum
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i % 251);
  }
  SendQueue queue;
  const std::string_view pieces[] = {std::string_view(payload)};
  queue.AppendFrame(FrameType::kShardDelta, pieces);
  ASSERT_EQ(queue.pending(), kFrameHeaderBytes + payload.size());

  // First flush must stop short: the frame cannot fit in the socket buffer.
  bool blocked = false;
  Status status = queue.Flush(pipe.writer, blocked);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(blocked);
  EXPECT_GT(queue.pending(), 0u);

  // Alternate draining the reader and flushing the tail until done.
  FrameReader reader;
  std::size_t flushes = 1;
  for (;;) {
    ReadOutcome outcome;
    char* dst = reader.PrepareWrite(64 * 1024);
    status = ReadSome(pipe.reader, dst, reader.writable(), outcome);
    ASSERT_TRUE(status.ok()) << status.ToString();
    reader.CommitWrite(outcome.bytes);
    FrameView view;
    bool has_frame = false;
    status = reader.Next(view, has_frame);
    ASSERT_TRUE(status.ok()) << status.ToString();
    if (has_frame) {
      EXPECT_EQ(view.type, FrameType::kShardDelta);
      EXPECT_EQ(view.payload, payload);
      break;
    }
    if (!queue.empty()) {
      status = queue.Flush(pipe.writer, blocked);
      ASSERT_TRUE(status.ok()) << status.ToString();
      ++flushes;
    }
    ASSERT_LT(flushes, 100000u) << "no progress";
  }
  EXPECT_TRUE(queue.empty());
  EXPECT_GT(flushes, 1u) << "frame fit in one write; short-write not covered";
}

TEST(SendQueueTest, MultiplePieceFramesConcatenate) {
  TinyPipe pipe;
  SendQueue queue;
  const std::string_view pieces[] = {"head-", "middle-", "tail"};
  queue.AppendFrame(FrameType::kError, pieces);
  bool blocked = false;
  while (!queue.empty()) {
    const Status status = queue.Flush(pipe.writer, blocked);
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  FrameReader reader;
  ReadOutcome outcome;
  char* dst = reader.PrepareWrite(4096);
  ReadSome(pipe.reader, dst, reader.writable(), outcome).CheckOK();
  reader.CommitWrite(outcome.bytes);
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, "head-middle-tail");
}

TEST(SendQueueTest, FlushOnClosedPeerIsIOError) {
  TinyPipe pipe;
  CloseSocket(pipe.reader);
  SendQueue queue;
  std::string payload(1 << 20, 'q');
  const std::string_view pieces[] = {std::string_view(payload)};
  queue.AppendFrame(FrameType::kShardDelta, pieces);
  // The first flush may land in the socket buffer; keep flushing until the
  // dead peer surfaces (EPIPE/ECONNRESET -> kIOError, the outage code).
  Status status;
  for (int i = 0; i < 64 && status.ok() && !queue.empty(); ++i) {
    bool blocked = false;
    status = queue.Flush(pipe.writer, blocked);
  }
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIOError);
}

// --- WriteAllVec -------------------------------------------------------------

TEST(WriteAllVecTest, GatheredPiecesArriveInOrder) {
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string payload = "payload-from-two-pieces";
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kClientUpload, payload.size(), header);
  const std::string_view pieces[] = {
      std::string_view(header, kFrameHeaderBytes),
      std::string_view(payload).substr(0, 7),
      std::string_view(payload).substr(7)};
  WriteAllVec(fds[0], pieces).CheckOK();

  std::string wire(kFrameHeaderBytes + payload.size(), '\0');
  ReadExact(fds[1], std::span<char>(wire.data(), wire.size())).CheckOK();
  FrameReader reader;
  reader.Feed(wire);
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, FrameType::kClientUpload);
  EXPECT_EQ(frames[0].second, payload);
  CloseSocket(fds[0]);
  CloseSocket(fds[1]);
}

TEST(WriteAllVecTest, LargePiecesSurvivePartialWrites) {
  // A tiny send buffer forces sendmsg to land far fewer bytes per call than
  // the gather holds, exercising the in-place iovec resumption (blocking fds
  // with a reader thread draining the other end).
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const int tiny = 1;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &tiny, sizeof(tiny));

  std::string expected;
  std::vector<std::string> chunks;
  for (int i = 0; i < 8; ++i) {
    chunks.push_back(
        std::string(128 * 1024 + i, static_cast<char>('a' + i)));
    expected += chunks.back();
  }
  std::vector<std::string_view> pieces(chunks.begin(), chunks.end());

  std::string wire(expected.size(), '\0');
  std::thread reader_thread([&] {
    ReadExact(fds[1], std::span<char>(wire.data(), wire.size())).CheckOK();
  });
  WriteAllVec(fds[0], pieces).CheckOK();
  reader_thread.join();
  EXPECT_TRUE(wire == expected);
  CloseSocket(fds[0]);
  CloseSocket(fds[1]);
}

// --- EpollLoop + TCP ---------------------------------------------------------

TEST(EpollLoopTest, ListenConnectAcceptEcho) {
  Result<int> listener = TcpListen("127.0.0.1", 0, 8);
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<std::uint16_t> port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok()) << port.status().ToString();
  SetNonBlocking(listener.value()).CheckOK();

  EpollLoop loop;
  loop.Watch(listener.value(), EPOLLIN, 1).CheckOK();

  Result<int> client = TcpConnect("127.0.0.1", port.value());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  SetIoTimeout(client.value(), 2000).CheckOK();

  // Accept via epoll readiness.
  int server_fd = -1;
  for (int spin = 0; spin < 100 && server_fd < 0; ++spin) {
    for (const epoll_event& event : loop.Wait(100)) {
      if (event.data.u64 == 1) {
        TcpAccept(listener.value(), server_fd).CheckOK();
      }
    }
  }
  ASSERT_GE(server_fd, 0) << "accept never became ready";
  SetNonBlocking(server_fd).CheckOK();
  loop.Watch(server_fd, EPOLLIN, 2).CheckOK();

  // Client sends a frame (blocking); server echoes it back via SendQueue.
  const std::string payload = "echo-me";
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kError, payload.size(), header);
  const std::string_view out_pieces[] = {
      std::string_view(header, kFrameHeaderBytes), std::string_view(payload)};
  WriteAllVec(client.value(), out_pieces).CheckOK();

  FrameReader server_reader;
  SendQueue server_out;
  bool echoed = false;
  for (int spin = 0; spin < 100 && !echoed; ++spin) {
    for (const epoll_event& event : loop.Wait(100)) {
      if (event.data.u64 != 2) continue;
      ReadOutcome outcome;
      char* dst = server_reader.PrepareWrite(4096);
      ReadSome(server_fd, dst, server_reader.writable(), outcome).CheckOK();
      server_reader.CommitWrite(outcome.bytes);
      FrameView view;
      bool has_frame = false;
      server_reader.Next(view, has_frame).CheckOK();
      if (!has_frame) continue;
      const std::string_view echo_pieces[] = {view.payload};
      server_out.AppendFrame(view.type, echo_pieces);
      bool blocked = false;
      while (!server_out.empty()) {
        server_out.Flush(server_fd, blocked).CheckOK();
      }
      echoed = true;
    }
  }
  ASSERT_TRUE(echoed);

  // Client reads the echo back (blocking, bounded by the io timeout).
  std::string echo_wire(kFrameHeaderBytes + payload.size(), '\0');
  ReadExact(client.value(), std::span<char>(echo_wire.data(), echo_wire.size()))
      .CheckOK();
  FrameReader client_reader;
  client_reader.Feed(echo_wire);
  const auto frames = DrainFrames(client_reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].second, payload);

  loop.Remove(server_fd);
  loop.Remove(listener.value());
  int client_fd = client.value();
  int listen_fd = listener.value();
  CloseSocket(server_fd);
  CloseSocket(client_fd);
  CloseSocket(listen_fd);
}

// --- FrameReader payload cap -------------------------------------------------

TEST(FrameReaderTest, OverCapPayloadPoisonsBeforeBuffering) {
  FrameReader reader;
  reader.set_max_payload(16);
  // Within the cap: passes.
  reader.Feed(EncodeFrame(FrameType::kHello, "under-cap"));
  auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  // One byte over: the header alone poisons the stream — the reader must not
  // wait for (or buffer) a payload it already knows it will refuse.
  const std::string big(17, 'b');
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kHello, big.size(), header);
  reader.Feed(std::string_view(header, sizeof(header)));
  FrameView view;
  bool has_frame = false;
  Status status = reader.Next(view, has_frame);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  // The cap survives Reset: it is connection policy, not stream state.
  reader.Reset();
  reader.Feed(std::string_view(header, sizeof(header)));
  status = reader.Next(view, has_frame);
  ASSERT_FALSE(status.ok());
}

// --- SendQueue reset (S2 regression) ----------------------------------------

TEST(SendQueueTest, ResetClearsPartialWriteCarry) {
  // Stage a frame too large for the tiny socket buffer, flush once so the
  // queue is left mid-frame (partial-write carry), then Reset — the exact
  // sequence a service runs when a byte-flipped stream poisons the reader
  // and the connection slot is torn down for reuse.
  TinyPipe stalled;
  SendQueue queue;
  std::string old_payload(1 << 20, 'o');
  const std::string_view old_pieces[] = {std::string_view(old_payload)};
  queue.AppendFrame(FrameType::kShardDelta, old_pieces);
  bool blocked = false;
  ASSERT_TRUE(queue.Flush(stalled.writer, blocked).ok());
  ASSERT_TRUE(blocked);
  ASSERT_GT(queue.pending(), 0u) << "frame fit the buffer; carry not covered";

  queue.Reset();
  EXPECT_EQ(queue.pending(), 0u);
  EXPECT_TRUE(queue.empty());

  // The queue now serves a fresh connection: the peer must see exactly the
  // new frame, with no tail bytes of the abandoned one leaking in front.
  int fds[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  const std::string_view new_pieces[] = {std::string_view("fresh-frame")};
  queue.AppendFrame(FrameType::kRoundAck, new_pieces);
  while (!queue.empty()) {
    ASSERT_TRUE(queue.Flush(fds[0], blocked).ok());
  }
  FrameReader reader;
  ReadOutcome outcome;
  char* dst = reader.PrepareWrite(4096);
  ReadSome(fds[1], dst, reader.writable(), outcome).CheckOK();
  reader.CommitWrite(outcome.bytes);
  const auto frames = DrainFrames(reader);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].first, FrameType::kRoundAck);
  EXPECT_EQ(frames[0].second, "fresh-frame");
  CloseSocket(fds[0]);
  CloseSocket(fds[1]);
}

// --- DeadlineWheel -----------------------------------------------------------

TEST(DeadlineWheelTest, ArmExpireDisarm) {
  DeadlineWheel wheel(/*slot_ms=*/16, /*slot_count=*/8);
  std::vector<std::uint64_t> due;
  wheel.Arm(3, 100);
  wheel.Arm(5, 40);
  EXPECT_EQ(wheel.armed_count(), 2u);
  std::uint64_t next = 0;
  ASSERT_TRUE(wheel.NextDeadline(next));
  EXPECT_EQ(next, 40u);

  wheel.ExpireDue(39, due);
  EXPECT_TRUE(due.empty());
  wheel.ExpireDue(40, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 5u);
  EXPECT_FALSE(wheel.armed(5));
  EXPECT_TRUE(wheel.armed(3));

  wheel.Disarm(3);
  EXPECT_EQ(wheel.armed_count(), 0u);
  due.clear();
  wheel.ExpireDue(1000, due);
  EXPECT_TRUE(due.empty()) << "disarmed tag still fired";
  EXPECT_FALSE(wheel.NextDeadline(next));
}

TEST(DeadlineWheelTest, ReArmMovesTheDeadline) {
  DeadlineWheel wheel(16, 8);
  std::vector<std::uint64_t> due;
  wheel.Arm(7, 50);
  wheel.Arm(7, 500);  // push it out; only the new deadline may fire
  EXPECT_EQ(wheel.armed_count(), 1u);
  wheel.ExpireDue(499, due);
  EXPECT_TRUE(due.empty());
  wheel.ExpireDue(500, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 7u);
}

TEST(DeadlineWheelTest, WrappedDeadlineSurvivesEarlySweeps) {
  // Span = 16 * 8 = 128 ms; a deadline 3 revolutions out shares a slot with
  // near deadlines and must be re-inserted, not fired, by early sweeps.
  DeadlineWheel wheel(16, 8);
  std::vector<std::uint64_t> due;
  wheel.Arm(1, 400);
  for (std::uint64_t now = 0; now < 400; now += 16) {
    wheel.ExpireDue(now, due);
    EXPECT_TRUE(due.empty()) << "fired early at " << now;
  }
  wheel.ExpireDue(400, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 1u);
}

TEST(DeadlineWheelTest, PastDeadlineFiresOnNextSweep) {
  DeadlineWheel wheel(16, 8);
  std::vector<std::uint64_t> due;
  wheel.ExpireDue(300, due);  // advance the cursor
  wheel.Arm(2, 100);          // already in the past
  wheel.ExpireDue(301, due);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0], 2u);
}

// --- Liveness policy ---------------------------------------------------------

TEST(LivenessTest, NextDeadlineFoldsEarliestFeature) {
  LivenessOptions options;
  PeerLiveness peer;
  peer.last_activity_ms = 1000;
  EXPECT_EQ(NextLivenessDeadline(options, peer), 0u) << "all features off";

  options.heartbeat_interval_ms = 500;
  options.peer_timeout_ms = 2000;
  EXPECT_EQ(NextLivenessDeadline(options, peer), 1500u) << "probe first";

  peer.probe_sent = true;
  EXPECT_EQ(NextLivenessDeadline(options, peer), 3000u)
      << "one probe per silence: next is the reap";

  options.read_deadline_ms = 100;
  peer.read_start_ms = 2800;
  EXPECT_EQ(NextLivenessDeadline(options, peer), 2900u)
      << "overdue partial frame beats the reap";
}

TEST(LivenessTest, ClassifySeverityOrder) {
  LivenessOptions options;
  options.heartbeat_interval_ms = 100;
  options.peer_timeout_ms = 300;
  options.read_deadline_ms = 50;
  PeerLiveness peer;
  peer.last_activity_ms = 0;
  peer.read_start_ms = 10;

  // At t=400 every feature is due: slow-read outranks reap outranks probe.
  EXPECT_EQ(ClassifyDeadline(options, peer, 400), LivenessVerdict::kSlowRead);
  peer.read_start_ms = 0;
  EXPECT_EQ(ClassifyDeadline(options, peer, 400), LivenessVerdict::kReap);
  EXPECT_EQ(ClassifyDeadline(options, peer, 150), LivenessVerdict::kProbe);
  peer.probe_sent = true;
  EXPECT_EQ(ClassifyDeadline(options, peer, 150), LivenessVerdict::kNone);
  peer.last_activity_ms = 140;
  peer.probe_sent = false;
  EXPECT_EQ(ClassifyDeadline(options, peer, 150), LivenessVerdict::kNone)
      << "fresh activity: stale wheel expiry must be a no-op";
}

// --- ChaosProxy --------------------------------------------------------------

TEST(ChaosDrawTest, PureFunctionOfKey) {
  ChaosSpec spec;
  spec.chaos_seed = 77;
  spec.reset_rate = 0.1;
  spec.corrupt_rate = 0.2;
  spec.delay_rate = 0.2;
  spec.partition_rate = 0.1;
  for (std::uint64_t conn = 0; conn < 4; ++conn) {
    for (std::uint64_t event = 0; event < 64; ++event) {
      const ChaosDecision a = DrawChaos(spec, conn, event);
      const ChaosDecision b = DrawChaos(spec, conn, event);
      EXPECT_EQ(static_cast<int>(a.action), static_cast<int>(b.action));
      EXPECT_EQ(a.corrupt_offset, b.corrupt_offset);
      EXPECT_EQ(a.corrupt_bit, b.corrupt_bit);
      EXPECT_EQ(a.delay_ms, b.delay_ms);
    }
  }
}

TEST(ChaosDrawTest, ZeroRatesAlwaysForward) {
  ChaosSpec spec;
  spec.chaos_seed = 99;
  for (std::uint64_t event = 0; event < 256; ++event) {
    EXPECT_EQ(static_cast<int>(DrawChaos(spec, 0, event).action),
              static_cast<int>(ChaosAction::kForward));
  }
}

TEST(ChaosDrawTest, RatesShapeTheDrawAndBoundsHold) {
  ChaosSpec spec;
  spec.chaos_seed = 5;
  spec.corrupt_rate = 1.0;
  std::size_t distinct_offsets = 0;
  std::uint32_t last_offset = 0;
  for (std::uint64_t event = 0; event < 128; ++event) {
    const ChaosDecision d = DrawChaos(spec, 3, event);
    ASSERT_EQ(static_cast<int>(d.action),
              static_cast<int>(ChaosAction::kCorrupt));
    EXPECT_LT(d.corrupt_offset, spec.window_bytes);
    EXPECT_LT(d.corrupt_bit, 8u);
    if (event == 0 || d.corrupt_offset != last_offset) ++distinct_offsets;
    last_offset = d.corrupt_offset;
  }
  EXPECT_GT(distinct_offsets, 1u) << "offset stream is degenerate";

  spec.corrupt_rate = 0.0;
  spec.delay_rate = 1.0;
  const ChaosDecision delay = DrawChaos(spec, 3, 0);
  ASSERT_EQ(static_cast<int>(delay.action),
            static_cast<int>(ChaosAction::kDelay));
  EXPECT_GE(delay.delay_ms, 1u);
  EXPECT_LE(delay.delay_ms, spec.delay_max_ms);
}

namespace {
/// Echo server: accepts one connection, echoes until EOF.
void EchoOnce(int listen_fd) {
  int fd = -1;
  while (fd < 0) {
    if (!TcpAccept(listen_fd, fd).ok()) return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    ssize_t off = 0;
    while (off < n) {
      const ssize_t w = ::send(fd, buf + off, static_cast<std::size_t>(n - off),
                               MSG_NOSIGNAL);
      if (w <= 0) break;
      off += w;
    }
  }
  CloseSocket(fd);
}
}  // namespace

TEST(ChaosProxyTest, ZeroChaosIsATransparentRelay) {
  Result<int> upstream = TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(upstream.ok());
  Result<std::uint16_t> upstream_port = BoundPort(upstream.value());
  ASSERT_TRUE(upstream_port.ok());
  std::thread echo([fd = upstream.value()] { EchoOnce(fd); });

  ChaosProxy::Options options;
  options.upstream_port = upstream_port.value();
  ChaosProxy proxy(options);
  ASSERT_TRUE(proxy.Listen().ok());
  std::thread relay([&proxy] { proxy.Run(); });

  Result<int> client = TcpConnect("127.0.0.1", proxy.port());
  ASSERT_TRUE(client.ok());
  SetIoTimeout(client.value(), 5000).CheckOK();
  const std::string message = "through-the-looking-glass";
  const std::string_view pieces[] = {std::string_view(message)};
  ASSERT_TRUE(WriteAllVec(client.value(), pieces).ok());
  std::string round_trip(message.size(), '\0');
  ASSERT_TRUE(
      ReadExact(client.value(), std::span<char>(round_trip.data(),
                                                round_trip.size()))
          .ok());
  EXPECT_EQ(round_trip, message);

  int client_fd = client.value();
  CloseSocket(client_fd);
  proxy.RequestStop();
  relay.join();
  int upstream_fd = upstream.value();
  CloseSocket(upstream_fd);
  echo.join();

  EXPECT_EQ(proxy.stats().connections_accepted, 1u);
  EXPECT_GE(proxy.stats().bytes_forwarded, 2 * message.size());
  EXPECT_EQ(proxy.stats().resets_injected, 0u);
  EXPECT_EQ(proxy.stats().corruptions_injected, 0u);
}

TEST(ChaosProxyTest, CertainResetKillsTheConnection) {
  Result<int> upstream = TcpListen("127.0.0.1", 0, 4);
  ASSERT_TRUE(upstream.ok());
  Result<std::uint16_t> upstream_port = BoundPort(upstream.value());
  ASSERT_TRUE(upstream_port.ok());
  std::thread echo([fd = upstream.value()] { EchoOnce(fd); });

  ChaosProxy::Options options;
  options.upstream_port = upstream_port.value();
  options.chaos.chaos_seed = 1;
  options.chaos.reset_rate = 1.0;  // first window of either direction resets
  ChaosProxy proxy(options);
  ASSERT_TRUE(proxy.Listen().ok());
  std::thread relay([&proxy] { proxy.Run(); });

  Result<int> client = TcpConnect("127.0.0.1", proxy.port());
  ASSERT_TRUE(client.ok());
  SetIoTimeout(client.value(), 5000).CheckOK();
  const std::string_view pieces[] = {std::string_view("doomed")};
  // The write may land in the socket buffer before the RST arrives; the
  // failure must surface on (at latest) the read.
  (void)WriteAllVec(client.value(), pieces);
  char byte = 0;
  const Status read = ReadExact(client.value(), std::span<char>(&byte, 1));
  EXPECT_FALSE(read.ok()) << "reset window still delivered bytes";

  int client_fd = client.value();
  CloseSocket(client_fd);
  proxy.RequestStop();
  relay.join();
  int upstream_fd = upstream.value();
  CloseSocket(upstream_fd);
  echo.join();
  EXPECT_EQ(proxy.stats().resets_injected, 1u);
  EXPECT_EQ(proxy.stats().bytes_forwarded, 0u);
}

TEST(TcpConnectTest, RefusedConnectionIsIOError) {
  // Bind-then-close to find a port that is (momentarily) free and refused.
  Result<int> listener = TcpListen("127.0.0.1", 0, 1);
  ASSERT_TRUE(listener.ok());
  Result<std::uint16_t> port = BoundPort(listener.value());
  ASSERT_TRUE(port.ok());
  int fd = listener.value();
  CloseSocket(fd);
  Result<int> client = TcpConnect("127.0.0.1", port.value());
  ASSERT_FALSE(client.ok());
  EXPECT_EQ(client.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace fedrec
