#include <gtest/gtest.h>

#include "attack/attack_factory.h"
#include "attack/target_select.h"
#include "data/public_view.h"
#include "data/synthetic.h"
#include "fed/simulation.h"
#include "model/metrics.h"

namespace fedrec {
namespace {

/// Shared end-to-end fixture: a small federation on structured synthetic data.
struct Federation {
  Dataset full;
  LeaveOneOutSplit split;
  PublicInteractions view;
  std::vector<std::uint32_t> targets;
  FedConfig config;
  MetricsConfig metrics_config;
};

Federation MakeFederation(double xi, std::uint64_t seed) {
  SyntheticConfig data_config;
  data_config.num_users = 100;
  data_config.num_items = 150;
  data_config.mean_interactions_per_user = 14.0;
  data_config.seed = seed;

  Federation fed;
  fed.full = GenerateSynthetic(data_config);
  Rng rng(seed + 1);
  fed.split = SplitLeaveOneOut(fed.full, rng);
  fed.view = PublicInteractions::Sample(fed.split.train, xi, rng,
                                        PublicSamplingMode::kCeil);
  Rng target_rng(seed + 2);
  fed.targets = SelectTargetItems(fed.split.train, 1,
                                  TargetSelection::kUnpopular, target_rng);

  fed.config.model.dim = 8;
  fed.config.model.learning_rate = 0.05f;
  fed.config.clients_per_round = 20;
  fed.config.epochs = 30;
  fed.config.clip_norm = 1.0f;
  fed.config.seed = seed + 3;

  fed.metrics_config.hr_negatives = 30;
  return fed;
}

/// Runs the federation under the given attack kind and returns final metrics.
MetricsResult RunAttack(Federation& fed, const std::string& kind,
                        double rho, ThreadPool* pool,
                        AttackOptions options = {}) {
  options.kind = kind;
  options.target_items = fed.targets;
  options.kappa = 30;
  options.clip_norm = fed.config.clip_norm;
  options.approx_epochs_first = 15;
  options.approx_epochs_round = 2;
  options.surrogate_epochs = 5;
  options.seed = 77;

  AttackInputs inputs;
  inputs.train = &fed.split.train;
  inputs.public_view = &fed.view;
  inputs.num_benign_users = fed.split.train.num_users();
  inputs.dim = fed.config.model.dim;

  auto attack = CreateAttack(options, inputs);
  attack.status().CheckOK();

  const std::size_t num_malicious = static_cast<std::size_t>(
      rho * static_cast<double>(fed.split.train.num_users()) + 0.5);

  Evaluator evaluator(fed.split.train, fed.split.test_items, fed.metrics_config,
                      fed.config.seed);
  Simulation sim(fed.split.train, fed.config,
                 attack.value() == nullptr ? 0 : num_malicious,
                 attack.value().get(), pool);
  const auto records = sim.Run(&evaluator, fed.targets, fed.config.epochs);
  return records.back().metrics;
}

TEST(IntegrationTest, FederatedTrainingLearnsToRank) {
  Federation fed = MakeFederation(0.1, 5);
  ThreadPool pool(4);

  // Untrained model baseline HR.
  Evaluator evaluator(fed.split.train, fed.split.test_items, fed.metrics_config,
                      9);
  Rng rng(10);
  Matrix random_users(fed.split.train.num_users(), fed.config.model.dim);
  Matrix random_items(fed.split.train.num_items(), fed.config.model.dim);
  random_users.FillGaussian(rng, 0.0f, 0.1f);
  random_items.FillGaussian(rng, 0.0f, 0.1f);
  const double random_hr =
      evaluator.Evaluate(random_users, random_items, fed.targets, &pool)
          .hit_ratio;

  const MetricsResult trained = RunAttack(fed, "none", 0.0, &pool);
  EXPECT_GT(trained.hit_ratio, random_hr + 0.1)
      << "federated BPR training failed to beat a random model";
}

TEST(IntegrationTest, NoAttackLeavesTargetUnexposed) {
  Federation fed = MakeFederation(0.1, 6);
  ThreadPool pool(4);
  const MetricsResult result = RunAttack(fed, "none", 0.0, &pool);
  EXPECT_LT(result.er_at[0], 0.05) << "cold target organically exposed";
}

TEST(IntegrationTest, FedRecAttackRaisesExposure) {
  Federation fed = MakeFederation(0.1, 7);
  ThreadPool pool(4);
  const MetricsResult none = RunAttack(fed, "none", 0.0, &pool);
  const MetricsResult attacked = RunAttack(fed, "fedrecattack", 0.1, &pool);
  EXPECT_GT(attacked.er_at[0], 0.5)
      << "FedRecAttack failed to expose the target";
  EXPECT_GT(attacked.er_at[0], none.er_at[0] + 0.4);
}

TEST(IntegrationTest, FedRecAttackSideEffectsAreSmall) {
  Federation fed = MakeFederation(0.1, 8);
  ThreadPool pool(4);
  const MetricsResult none = RunAttack(fed, "none", 0.0, &pool);
  Federation fed2 = MakeFederation(0.1, 8);
  const MetricsResult attacked = RunAttack(fed2, "fedrecattack", 0.1, &pool);
  // Stealthiness: recommendation accuracy within a few points of no-attack.
  EXPECT_GT(attacked.hit_ratio, none.hit_ratio - 0.15);
}

TEST(IntegrationTest, AblationWithoutPublicDataAttackCollapses) {
  Federation fed = MakeFederation(0.0, 9);
  ThreadPool pool(4);
  const MetricsResult result = RunAttack(fed, "fedrecattack", 0.1, &pool);
  EXPECT_LT(result.er_at[0], 0.05)
      << "attack should be ineffective with xi = 0 (Table IX)";
}

TEST(IntegrationTest, ShillingBaselinesAreWeakAtSmallRho) {
  Federation fed = MakeFederation(0.1, 10);
  ThreadPool pool(4);
  for (const char* kind : {"random", "bandwagon"}) {
    const MetricsResult result = RunAttack(fed, kind, 0.05, &pool);
    EXPECT_LT(result.er_at[0], 0.2) << kind << " unexpectedly strong";
  }
}

TEST(IntegrationTest, ExplicitBoostNeedsManyMaliciousUsers) {
  Federation fed = MakeFederation(0.1, 11);
  ThreadPool pool(4);
  AttackOptions boost_options;
  boost_options.boost = 8.0f;
  const MetricsResult small = RunAttack(fed, "eb", 0.05, &pool, boost_options);
  Federation fed2 = MakeFederation(0.1, 11);
  const MetricsResult large = RunAttack(fed2, "eb", 0.3, &pool, boost_options);
  EXPECT_GE(large.er_at[0], small.er_at[0]);
}

TEST(IntegrationTest, ByzantineRobustAggregationDoesNotKillBoostAttack) {
  // Section VI of the paper: classical byzantine-robust aggregation fits FR
  // poorly because each cold item's gradient rows come from very few (mostly
  // malicious) contributors — the per-row median IS the poisoned value.
  // Verify the attack survives median aggregation rather than being zeroed.
  Federation fed = MakeFederation(0.1, 12);
  ThreadPool pool(4);
  AttackOptions boost_options;
  boost_options.boost = 8.0f;
  const MetricsResult with_sum = RunAttack(fed, "eb", 0.3, &pool, boost_options);

  Federation fed_median = MakeFederation(0.1, 12);
  fed_median.config.aggregator.kind = AggregatorKind::kMedian;
  const MetricsResult with_median =
      RunAttack(fed_median, "eb", 0.3, &pool, boost_options);
  EXPECT_GT(with_median.er_at[0] + with_sum.er_at[0], 0.02)
      << "boost attack should survive in at least one aggregation mode";
  EXPECT_GT(with_median.er_at[0], 0.0)
      << "median aggregation unexpectedly eliminated the attack entirely";
}

TEST(IntegrationTest, EndToEndDeterminism) {
  Federation a = MakeFederation(0.1, 13);
  Federation b = MakeFederation(0.1, 13);
  const MetricsResult ra = RunAttack(a, "fedrecattack", 0.05, nullptr);
  const MetricsResult rb = RunAttack(b, "fedrecattack", 0.05, nullptr);
  EXPECT_DOUBLE_EQ(ra.er_at[0], rb.er_at[0]);
  EXPECT_DOUBLE_EQ(ra.hit_ratio, rb.hit_ratio);
}

}  // namespace
}  // namespace fedrec
