#include "fed/svm_detector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace fedrec {
namespace {

/// Builds a labeled feature population: clean uploads cluster near
/// (rows=60, max=0.4, total=2); poisoned ones deviate by `separation` sigmas.
void MakePopulation(double separation, std::size_t n, std::uint64_t seed,
                    std::vector<UploadFeatures>& features,
                    std::vector<bool>& labels) {
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool poisoned = i % 4 == 0;
    UploadFeatures f;
    const double shift = poisoned ? separation : 0.0;
    f.row_count = 60.0 + rng.NextGaussian(0.0, 5.0) + shift * 5.0;
    f.max_row_norm = 0.4 + rng.NextGaussian(0.0, 0.05) + shift * 0.05;
    f.total_norm = 2.0 + rng.NextGaussian(0.0, 0.2) + shift * 0.2;
    features.push_back(f);
    labels.push_back(poisoned);
  }
}

TEST(SvmDetectorTest, LearnsWellSeparatedClasses) {
  std::vector<UploadFeatures> features;
  std::vector<bool> labels;
  MakePopulation(/*separation=*/4.0, 400, 1, features, labels);
  SvmDetector svm;
  svm.Train(features, labels);
  EXPECT_GT(svm.Accuracy(features, labels), 0.95);
}

TEST(SvmDetectorTest, StrugglesWithOverlappingClasses) {
  // The paper's point: benign-shaped poisoned gradients are not separable.
  std::vector<UploadFeatures> features;
  std::vector<bool> labels;
  MakePopulation(/*separation=*/0.0, 400, 2, features, labels);
  SvmDetector svm;
  svm.Train(features, labels);
  // With zero separation the best achievable is the majority class (75%).
  EXPECT_LT(svm.Accuracy(features, labels), 0.85);
}

TEST(SvmDetectorTest, GeneralizesToHeldOutData) {
  std::vector<UploadFeatures> train_x, test_x;
  std::vector<bool> train_y, test_y;
  MakePopulation(3.0, 300, 3, train_x, train_y);
  MakePopulation(3.0, 100, 4, test_x, test_y);
  SvmDetector svm;
  svm.Train(train_x, train_y);
  EXPECT_GT(svm.Accuracy(test_x, test_y), 0.9);
}

TEST(SvmDetectorTest, DecisionValueSignMatchesClassify) {
  std::vector<UploadFeatures> features;
  std::vector<bool> labels;
  MakePopulation(4.0, 100, 5, features, labels);
  SvmDetector svm;
  svm.Train(features, labels);
  for (const UploadFeatures& f : features) {
    EXPECT_EQ(svm.Classify(f), svm.DecisionValue(f) > 0.0);
  }
}

TEST(SvmDetectorTest, ScreenFlagsPredictedPoisoned) {
  std::vector<UploadFeatures> features;
  std::vector<bool> labels;
  MakePopulation(4.0, 200, 6, features, labels);
  SvmDetector svm;
  svm.Train(features, labels);

  // Build sparse uploads realizing two feature points: one clean-ish,
  // one far out.
  auto make_update = [](std::size_t rows, float norm_per_row) {
    ClientUpdate update;
    update.item_gradients = SparseRowMatrix(4);
    for (std::size_t r = 0; r < rows; ++r) {
      auto row = update.item_gradients.RowMutable(r);
      row[0] = norm_per_row;
    }
    return update;
  };
  std::vector<ClientUpdate> updates;
  updates.push_back(make_update(60, 0.06f));   // clean-shaped
  updates.push_back(make_update(120, 10.0f));  // extreme outlier
  const DetectionReport report = svm.Screen(updates);
  // The extreme upload must be flagged; decision values exposed per upload.
  EXPECT_EQ(report.z_scores.size(), 6u);
  bool outlier_flagged = false;
  for (std::size_t idx : report.flagged) outlier_flagged |= idx == 1;
  EXPECT_TRUE(outlier_flagged);
}

TEST(SvmDetectorTest, RequiresBothClasses) {
  std::vector<UploadFeatures> features(10);
  std::vector<bool> all_clean(10, false);
  SvmDetector svm;
  EXPECT_DEATH(svm.Train(features, all_clean), "poisoned");
  std::vector<bool> all_poisoned(10, true);
  EXPECT_DEATH(svm.Train(features, all_poisoned), "clean");
}

TEST(SvmDetectorTest, UseBeforeTrainingAborts) {
  SvmDetector svm;
  UploadFeatures f;
  EXPECT_DEATH(svm.DecisionValue(f), "Train");
}

TEST(SvmDetectorTest, TrainingIsDeterministic) {
  std::vector<UploadFeatures> features;
  std::vector<bool> labels;
  MakePopulation(2.0, 100, 7, features, labels);
  SvmDetector a, b;
  a.Train(features, labels);
  b.Train(features, labels);
  EXPECT_EQ(a.weights(), b.weights());
  EXPECT_DOUBLE_EQ(a.bias(), b.bias());
}

}  // namespace
}  // namespace fedrec
