#include "shard/federation_service.h"

#include <array>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/matrix.h"
#include "common/rng.h"
#include "fed/aggregator.h"
#include "net/frame.h"
#include "net/socket.h"
#include "shard/shard_plan.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace fedrec {
namespace {

constexpr std::size_t kNumItems = 30;
constexpr std::size_t kDim = 6;
constexpr float kLearningRate = 0.05f;

MfHyperParams ModelParams() {
  MfHyperParams params;
  params.dim = kDim;
  params.learning_rate = kLearningRate;
  return params;
}

/// A deterministic upload: `rows` gradient rows seeded off (user, round).
SparseRowMatrix MakeGradients(std::uint32_t user, std::uint64_t round,
                              std::span<const std::size_t> rows) {
  SparseRowMatrix gradients(kDim);
  Rng rng(1000 + round * 100 + user);
  for (const std::size_t row : rows) {
    auto values = gradients.RowMutable(row);
    for (float& v : values) {
      v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
  }
  return gradients;
}

std::string EncodeClientUpload(const SparseRowMatrix& gradients,
                               std::uint32_t user) {
  BinaryWriter writer;
  EncodeUpload(gradients, user, writer);
  return writer.buffer();
}

/// Blocking test client: one TCP connection to the service.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    Result<int> fd = TcpConnect("127.0.0.1", port);
    fd.status().CheckOK();
    fd_ = fd.value();
    SetIoTimeout(fd_, 5000).CheckOK();
  }
  ~TestClient() { CloseSocket(fd_); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  void SendFrame(FrameType type, std::string_view payload) {
    char header[kFrameHeaderBytes];
    EncodeFrameHeader(type, payload.size(), header);
    const std::array<std::string_view, 2> pieces = {
        std::string_view(header, sizeof(header)), payload};
    WriteAllVec(fd_, pieces).CheckOK();
  }

  /// Blocks (bounded by the io timeout) for the next frame from the service.
  std::pair<FrameType, std::string> NextFrame() {
    for (;;) {
      FrameView view;
      bool has_frame = false;
      reader_.Next(view, has_frame).CheckOK();
      if (has_frame) return {view.type, std::string(view.payload)};
      char* tail = reader_.PrepareWrite(4096);
      ReadOutcome outcome;
      ReadSome(fd_, tail, reader_.writable(), outcome).CheckOK();
      FEDREC_CHECK(!outcome.eof) << "service closed the connection";
      FEDREC_CHECK(!outcome.would_block) << "service reply timed out";
      reader_.CommitWrite(outcome.bytes);
    }
  }

  std::uint64_t ExpectRoundAck() {
    const auto [type, payload] = NextFrame();
    EXPECT_EQ(type, FrameType::kRoundAck);
    BinaryReader reader = BinaryReader::View(payload);
    Result<std::uint64_t> round = reader.ReadU64();
    round.status().CheckOK();
    return round.value();
  }

  /// Raw bytes on the wire — corrupt frames, partial headers.
  void SendRaw(std::string_view bytes) {
    const std::array<std::string_view, 1> pieces = {bytes};
    WriteAllVec(fd_, pieces).CheckOK();
  }

  /// Discards inbound bytes until the service closes the connection (orderly
  /// or reset); false when the socket instead goes quiet for the io timeout.
  bool WaitForClose() {
    for (int i = 0; i < 1000; ++i) {
      char buf[1024];
      ReadOutcome outcome;
      if (!ReadSome(fd_, buf, sizeof(buf), outcome).ok()) return true;
      if (outcome.eof) return true;
      if (outcome.would_block) return false;
    }
    return false;
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

/// Service + in-process shard fan-out on a background thread. The service
/// self-stops after `max_rounds`; Join() then reaps the thread.
class ServiceHarness {
 public:
  ServiceHarness(MfModel* model, std::size_t num_shards,
                 std::size_t round_size, std::size_t max_rounds)
      : ServiceHarness(model, num_shards,
                       MakeOptions(round_size, max_rounds)) {}

  /// Full-options variant for the liveness/backpressure suites.
  ServiceHarness(MfModel* model, std::size_t num_shards,
                 FederationService::Options options)
      : transport_(ShardPlan(kNumItems, num_shards,
                             ShardPolicy::kContiguousRange),
                   kDim) {
    service_ =
        std::make_unique<FederationService>(model, &transport_, options);
    service_->Listen().CheckOK();
    thread_ = std::thread([this] { service_->Run(); });
  }

  static FederationService::Options MakeOptions(std::size_t round_size,
                                                std::size_t max_rounds) {
    FederationService::Options options;
    options.round_size = round_size;
    options.learning_rate = kLearningRate;
    options.max_rounds = max_rounds;
    return options;
  }

  void RequestStop() { service_->RequestStop(); }

  ~ServiceHarness() {
    if (thread_.joinable()) {
      service_->RequestStop();
      thread_.join();
    }
  }

  void Join() { thread_.join(); }
  std::uint16_t port() const { return service_->port(); }
  const FederationService::Stats& stats() const { return service_->stats(); }

 private:
  InProcessShardTransport transport_;
  std::unique_ptr<FederationService> service_;
  std::thread thread_;
};

/// Applies one round of `updates` to `model` the way the service does:
/// aggregate (kSum defaults) then one sparse SGD step.
void ApplyReferenceRound(MfModel& model,
                         std::span<const ClientUpdate> updates) {
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, kDim, AggregatorOptions{}, workspace, delta);
  model.ApplySparseGradient(delta, kLearningRate);
}

TEST(FederationServiceTest, SingleClientDrivesRoundsAndModelMatches) {
  Rng service_init(5);
  MfModel service_model(kNumItems, ModelParams(), service_init);
  Rng reference_init(5);
  MfModel reference_model(kNumItems, ModelParams(), reference_init);
  ASSERT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());

  const std::size_t rounds = 3;
  ServiceHarness harness(&service_model, /*num_shards=*/2, /*round_size=*/1,
                         rounds);
  TestClient client(harness.port());
  const std::array<std::size_t, 3> rows = {2, 17, 29};
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const SparseRowMatrix gradients = MakeGradients(7, r, rows);
    client.SendFrame(FrameType::kClientUpload,
                     EncodeClientUpload(gradients, 7));
    EXPECT_EQ(client.ExpectRoundAck(), r);

    ClientUpdate update;
    update.user = 7;
    update.item_gradients = gradients;
    ApplyReferenceRound(reference_model, std::span(&update, 1));
  }
  harness.Join();  // self-stopped at max_rounds

  EXPECT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());
  EXPECT_EQ(harness.stats().rounds_completed, rounds);
  EXPECT_EQ(harness.stats().uploads_received, rounds);
  EXPECT_EQ(harness.stats().rejected_uploads, 0u);
}

TEST(FederationServiceTest, ConcurrentClientsCompleteRounds) {
  Rng service_init(6);
  MfModel service_model(kNumItems, ModelParams(), service_init);
  Rng reference_init(6);
  MfModel reference_model(kNumItems, ModelParams(), reference_init);

  const std::size_t num_clients = 3;
  const std::size_t rounds = 2;
  ServiceHarness harness(&service_model, /*num_shards=*/2, num_clients,
                         rounds);

  // Disjoint row sets per client: per-row aggregation sees exactly one
  // contributor, so the reference is insensitive to arrival order.
  const std::array<std::array<std::size_t, 2>, 3> client_rows = {
      {{0, 11}, {5, 22}, {9, 28}}};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      for (std::uint64_t r = 0; r < rounds; ++r) {
        const SparseRowMatrix gradients = MakeGradients(
            static_cast<std::uint32_t>(c), r, client_rows[c]);
        client.SendFrame(FrameType::kClientUpload,
                         EncodeClientUpload(gradients,
                                            static_cast<std::uint32_t>(c)));
        EXPECT_EQ(client.ExpectRoundAck(), r);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  harness.Join();

  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::vector<ClientUpdate> updates(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
      updates[c].user = static_cast<std::uint32_t>(c);
      updates[c].item_gradients = MakeGradients(
          static_cast<std::uint32_t>(c), r, client_rows[c]);
    }
    ApplyReferenceRound(reference_model, updates);
  }
  EXPECT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());
  EXPECT_EQ(harness.stats().rounds_completed, rounds);
  EXPECT_EQ(harness.stats().uploads_received, num_clients * rounds);
  EXPECT_EQ(harness.stats().connections_accepted, num_clients);
}

TEST(FederationServiceTest, MalformedUploadIsRejectedAndConnectionSurvives) {
  Rng init(7);
  MfModel model(kNumItems, ModelParams(), init);
  ServiceHarness harness(&model, /*num_shards=*/1, /*round_size=*/1,
                         /*max_rounds=*/1);
  TestClient client(harness.port());

  // Garbage bytes: the FRWU decoder refuses them, the service replies with
  // kError, and the connection keeps serving.
  client.SendFrame(FrameType::kClientUpload, "definitely not FRWU bytes");
  const auto [error_type, error_payload] = client.NextFrame();
  EXPECT_EQ(error_type, FrameType::kError);

  const std::array<std::size_t, 1> rows = {3};
  client.SendFrame(
      FrameType::kClientUpload,
      EncodeClientUpload(MakeGradients(1, 0, rows), 1));
  EXPECT_EQ(client.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_EQ(harness.stats().rejected_uploads, 1u);
  EXPECT_EQ(harness.stats().rounds_completed, 1u);
}

TEST(FederationServiceTest, WrongDimUploadIsRejected) {
  Rng init(8);
  MfModel model(kNumItems, ModelParams(), init);
  ServiceHarness harness(&model, /*num_shards=*/1, /*round_size=*/1,
                         /*max_rounds=*/1);
  TestClient client(harness.port());

  // Well-formed FRWU, wrong geometry: a dim-4 upload against a dim-6 model.
  SparseRowMatrix wrong_dim(4);
  auto row = wrong_dim.RowMutable(2);
  for (float& v : row) v = 0.25f;
  client.SendFrame(FrameType::kClientUpload,
                   EncodeClientUpload(wrong_dim, 9));
  const auto [error_type, error_payload] = client.NextFrame();
  EXPECT_EQ(error_type, FrameType::kError);

  const std::array<std::size_t, 1> rows = {4};
  client.SendFrame(
      FrameType::kClientUpload,
      EncodeClientUpload(MakeGradients(2, 0, rows), 2));
  EXPECT_EQ(client.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_EQ(harness.stats().rejected_uploads, 1u);
}

// --- S2 regression: byte-flip mid-stream ------------------------------------

TEST(FederationServiceTest, ByteFlipMidStreamClosesAndSlotReusesClean) {
  Rng init(10);
  MfModel model(kNumItems, ModelParams(), init);
  ServiceHarness harness(&model, /*num_shards=*/1, /*round_size=*/1,
                         /*max_rounds=*/2);
  {
    TestClient victim(harness.port());
    const std::array<std::size_t, 1> rows = {5};
    victim.SendFrame(FrameType::kClientUpload,
                     EncodeClientUpload(MakeGradients(1, 0, rows), 1));
    EXPECT_EQ(victim.ExpectRoundAck(), 0u);

    // A frame whose header magic took a bit flip in flight: framing is lost,
    // so the service must drop the connection (an in-payload flip would be
    // caught by the FRWU checksum instead and answered with kError).
    std::string flipped =
        EncodeClientUpload(MakeGradients(1, 1, rows), 1);
    char header[kFrameHeaderBytes];
    EncodeFrameHeader(FrameType::kClientUpload, flipped.size(), header);
    header[2] ^= 0x10;
    std::string wire(header, sizeof(header));
    wire += flipped;
    victim.SendRaw(wire);
    EXPECT_TRUE(victim.WaitForClose()) << "poisoned stream kept the conn";
  }

  // The torn-down slot (likely the same fd number) must come back pristine:
  // no reader poison, no partial-write carry from the dead connection.
  TestClient fresh(harness.port());
  const std::array<std::size_t, 1> rows = {6};
  fresh.SendFrame(FrameType::kClientUpload,
                  EncodeClientUpload(MakeGradients(2, 1, rows), 2));
  EXPECT_EQ(fresh.ExpectRoundAck(), 1u);
  harness.Join();
  EXPECT_EQ(harness.stats().rounds_completed, 2u);
}

// --- S3: send-queue high water ----------------------------------------------

namespace {

struct OverloadOutcome {
  std::uint64_t shed_frames = 0;
  std::uint64_t retry_afters = 0;
  std::uint64_t rounds = 0;
  std::uint64_t allocations = 0;  ///< SparseAllocationCount delta of the run
};

/// One overload run: a client fires `uploads` rounds at a service whose
/// accepted sockets have a one-byte SO_SNDBUF, and never reads a single
/// reply. Returns the shed/allocation ledger of the run.
OverloadOutcome RunOverload(std::size_t uploads) {
  Rng init(11);
  MfModel model(kNumItems, ModelParams(), init);
  FederationService::Options options =
      ServiceHarness::MakeOptions(/*round_size=*/1, /*max_rounds=*/uploads);
  options.send_high_water = 1024;
  options.retry_after_ms = 25;
  options.so_sndbuf = 1;
  ResetSparseAllocationCount();
  OverloadOutcome outcome;
  {
    ServiceHarness harness(&model, /*num_shards=*/1, options);
    TestClient client(harness.port());
    const std::array<std::size_t, 1> rows = {7};
    const std::string upload =
        EncodeClientUpload(MakeGradients(3, 0, rows), 3);
    for (std::size_t r = 0; r < uploads; ++r) {
      client.SendFrame(FrameType::kClientUpload, upload);
    }
    harness.Join();  // self-stops at max_rounds; every round completed
    outcome.shed_frames = harness.stats().shed_frames;
    outcome.retry_afters = harness.stats().retry_afters_sent;
    outcome.rounds = harness.stats().rounds_completed;
  }
  outcome.allocations = SparseAllocationCount();
  return outcome;
}

}  // namespace

TEST(FederationServiceTest, StalledPeerShedsWithRetryAfterNotUnboundedGrowth) {
  const OverloadOutcome small = RunOverload(16000);
  ASSERT_EQ(small.rounds, 16000u) << "shedding must not stall rounds";
  EXPECT_GT(small.shed_frames, 0u) << "high water never breached";
  // One notice per *breach*, not per shed frame: the peer's rcvbuf slowly
  // absorbs bytes, so the queue can drain below high water and breach again,
  // but the notice count must stay orders below the shed count.
  EXPECT_GE(small.retry_afters, 1u) << "breach sent no overload notice";
  EXPECT_LT(small.retry_afters * 100, small.shed_frames)
      << "a notice per shed frame defeats the backpressure";

  // Twice the sheddable traffic must not grow the queue further: past the
  // high water every dropped reply is free, so the allocation ledger of the
  // doubled run stays flat instead of doubling (one growth event per staged
  // frame is what the broken, unbounded queue would record).
  const OverloadOutcome big = RunOverload(32000);
  ASSERT_EQ(big.rounds, 32000u);
  EXPECT_GT(big.shed_frames, small.shed_frames);
  EXPECT_LE(big.allocations, small.allocations + 128)
      << "allocation count scaled with shed traffic: queue is growing";
}

// --- Liveness: probe, reap, slow read ---------------------------------------

TEST(FederationServiceTest, IdleConnectionGetsHeartbeatProbe) {
  Rng init(12);
  MfModel model(kNumItems, ModelParams(), init);
  FederationService::Options options =
      ServiceHarness::MakeOptions(/*round_size=*/1, /*max_rounds=*/1);
  options.liveness.heartbeat_interval_ms = 40;
  ServiceHarness harness(&model, /*num_shards=*/1, options);

  TestClient client(harness.port());
  // Send nothing: the idle gap must draw exactly one probe, delivered as a
  // payload-free kHeartbeat frame.
  const auto [type, payload] = client.NextFrame();
  EXPECT_EQ(type, FrameType::kHeartbeat);
  EXPECT_TRUE(payload.empty());

  const std::array<std::size_t, 1> rows = {9};
  client.SendFrame(FrameType::kClientUpload,
                   EncodeClientUpload(MakeGradients(4, 0, rows), 4));
  EXPECT_EQ(client.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_GE(harness.stats().heartbeats_sent, 1u);
}

TEST(FederationServiceTest, SilentPeerIsReaped) {
  Rng init(13);
  MfModel model(kNumItems, ModelParams(), init);
  FederationService::Options options =
      ServiceHarness::MakeOptions(/*round_size=*/1, /*max_rounds=*/1);
  options.liveness.peer_timeout_ms = 60;
  ServiceHarness harness(&model, /*num_shards=*/1, options);

  TestClient silent(harness.port());
  EXPECT_TRUE(silent.WaitForClose()) << "half-open connection not reaped";

  // The reap freed the slot; a live client still completes the round.
  TestClient live(harness.port());
  const std::array<std::size_t, 1> rows = {11};
  live.SendFrame(FrameType::kClientUpload,
                 EncodeClientUpload(MakeGradients(5, 0, rows), 5));
  EXPECT_EQ(live.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_GE(harness.stats().peers_reaped, 1u);
}

TEST(FederationServiceTest, TricklingPartialFrameHitsReadDeadline) {
  Rng init(14);
  MfModel model(kNumItems, ModelParams(), init);
  FederationService::Options options =
      ServiceHarness::MakeOptions(/*round_size=*/1, /*max_rounds=*/1);
  options.liveness.read_deadline_ms = 50;
  ServiceHarness harness(&model, /*num_shards=*/1, options);

  TestClient loris(harness.port());
  // Half a frame header, then silence: reassembly state held hostage until
  // the read deadline closes the connection (slow-loris guard).
  char header[kFrameHeaderBytes];
  EncodeFrameHeader(FrameType::kClientUpload, 64, header);
  loris.SendRaw(std::string_view(header, kFrameHeaderBytes / 2));
  EXPECT_TRUE(loris.WaitForClose()) << "trickling frame not closed";

  TestClient live(harness.port());
  const std::array<std::size_t, 1> rows = {13};
  live.SendFrame(FrameType::kClientUpload,
                 EncodeClientUpload(MakeGradients(6, 0, rows), 6));
  EXPECT_EQ(live.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_GE(harness.stats().slow_reads_closed, 1u);
}

}  // namespace
}  // namespace fedrec
