#include "shard/federation_service.h"

#include <array>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "fed/aggregator.h"
#include "net/frame.h"
#include "net/socket.h"
#include "shard/shard_plan.h"
#include "shard/transport.h"
#include "shard/wire.h"

namespace fedrec {
namespace {

constexpr std::size_t kNumItems = 30;
constexpr std::size_t kDim = 6;
constexpr float kLearningRate = 0.05f;

MfHyperParams ModelParams() {
  MfHyperParams params;
  params.dim = kDim;
  params.learning_rate = kLearningRate;
  return params;
}

/// A deterministic upload: `rows` gradient rows seeded off (user, round).
SparseRowMatrix MakeGradients(std::uint32_t user, std::uint64_t round,
                              std::span<const std::size_t> rows) {
  SparseRowMatrix gradients(kDim);
  Rng rng(1000 + round * 100 + user);
  for (const std::size_t row : rows) {
    auto values = gradients.RowMutable(row);
    for (float& v : values) {
      v = static_cast<float>(rng.NextGaussian(0.0, 0.1));
    }
  }
  return gradients;
}

std::string EncodeClientUpload(const SparseRowMatrix& gradients,
                               std::uint32_t user) {
  BinaryWriter writer;
  EncodeUpload(gradients, user, writer);
  return writer.buffer();
}

/// Blocking test client: one TCP connection to the service.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    Result<int> fd = TcpConnect("127.0.0.1", port);
    fd.status().CheckOK();
    fd_ = fd.value();
    SetIoTimeout(fd_, 5000).CheckOK();
  }
  ~TestClient() { CloseSocket(fd_); }
  TestClient(const TestClient&) = delete;
  TestClient& operator=(const TestClient&) = delete;

  void SendFrame(FrameType type, std::string_view payload) {
    char header[kFrameHeaderBytes];
    EncodeFrameHeader(type, payload.size(), header);
    const std::array<std::string_view, 2> pieces = {
        std::string_view(header, sizeof(header)), payload};
    WriteAllVec(fd_, pieces).CheckOK();
  }

  /// Blocks (bounded by the io timeout) for the next frame from the service.
  std::pair<FrameType, std::string> NextFrame() {
    for (;;) {
      FrameView view;
      bool has_frame = false;
      reader_.Next(view, has_frame).CheckOK();
      if (has_frame) return {view.type, std::string(view.payload)};
      char* tail = reader_.PrepareWrite(4096);
      ReadOutcome outcome;
      ReadSome(fd_, tail, reader_.writable(), outcome).CheckOK();
      FEDREC_CHECK(!outcome.eof) << "service closed the connection";
      FEDREC_CHECK(!outcome.would_block) << "service reply timed out";
      reader_.CommitWrite(outcome.bytes);
    }
  }

  std::uint64_t ExpectRoundAck() {
    const auto [type, payload] = NextFrame();
    EXPECT_EQ(type, FrameType::kRoundAck);
    BinaryReader reader = BinaryReader::View(payload);
    Result<std::uint64_t> round = reader.ReadU64();
    round.status().CheckOK();
    return round.value();
  }

 private:
  int fd_ = -1;
  FrameReader reader_;
};

/// Service + in-process shard fan-out on a background thread. The service
/// self-stops after `max_rounds`; Join() then reaps the thread.
class ServiceHarness {
 public:
  ServiceHarness(MfModel* model, std::size_t num_shards,
                 std::size_t round_size, std::size_t max_rounds)
      : transport_(ShardPlan(kNumItems, num_shards,
                             ShardPolicy::kContiguousRange),
                   kDim) {
    FederationService::Options options;
    options.round_size = round_size;
    options.learning_rate = kLearningRate;
    options.max_rounds = max_rounds;
    service_ =
        std::make_unique<FederationService>(model, &transport_, options);
    service_->Listen().CheckOK();
    thread_ = std::thread([this] { service_->Run(); });
  }

  ~ServiceHarness() {
    if (thread_.joinable()) {
      service_->RequestStop();
      thread_.join();
    }
  }

  void Join() { thread_.join(); }
  std::uint16_t port() const { return service_->port(); }
  const FederationService::Stats& stats() const { return service_->stats(); }

 private:
  InProcessShardTransport transport_;
  std::unique_ptr<FederationService> service_;
  std::thread thread_;
};

/// Applies one round of `updates` to `model` the way the service does:
/// aggregate (kSum defaults) then one sparse SGD step.
void ApplyReferenceRound(MfModel& model,
                         std::span<const ClientUpdate> updates) {
  AggregationWorkspace workspace;
  SparseRoundDelta delta;
  AggregateUpdates(updates, kDim, AggregatorOptions{}, workspace, delta);
  model.ApplySparseGradient(delta, kLearningRate);
}

TEST(FederationServiceTest, SingleClientDrivesRoundsAndModelMatches) {
  Rng service_init(5);
  MfModel service_model(kNumItems, ModelParams(), service_init);
  Rng reference_init(5);
  MfModel reference_model(kNumItems, ModelParams(), reference_init);
  ASSERT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());

  const std::size_t rounds = 3;
  ServiceHarness harness(&service_model, /*num_shards=*/2, /*round_size=*/1,
                         rounds);
  TestClient client(harness.port());
  const std::array<std::size_t, 3> rows = {2, 17, 29};
  for (std::uint64_t r = 0; r < rounds; ++r) {
    const SparseRowMatrix gradients = MakeGradients(7, r, rows);
    client.SendFrame(FrameType::kClientUpload,
                     EncodeClientUpload(gradients, 7));
    EXPECT_EQ(client.ExpectRoundAck(), r);

    ClientUpdate update;
    update.user = 7;
    update.item_gradients = gradients;
    ApplyReferenceRound(reference_model, std::span(&update, 1));
  }
  harness.Join();  // self-stopped at max_rounds

  EXPECT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());
  EXPECT_EQ(harness.stats().rounds_completed, rounds);
  EXPECT_EQ(harness.stats().uploads_received, rounds);
  EXPECT_EQ(harness.stats().rejected_uploads, 0u);
}

TEST(FederationServiceTest, ConcurrentClientsCompleteRounds) {
  Rng service_init(6);
  MfModel service_model(kNumItems, ModelParams(), service_init);
  Rng reference_init(6);
  MfModel reference_model(kNumItems, ModelParams(), reference_init);

  const std::size_t num_clients = 3;
  const std::size_t rounds = 2;
  ServiceHarness harness(&service_model, /*num_shards=*/2, num_clients,
                         rounds);

  // Disjoint row sets per client: per-row aggregation sees exactly one
  // contributor, so the reference is insensitive to arrival order.
  const std::array<std::array<std::size_t, 2>, 3> client_rows = {
      {{0, 11}, {5, 22}, {9, 28}}};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < num_clients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(harness.port());
      for (std::uint64_t r = 0; r < rounds; ++r) {
        const SparseRowMatrix gradients = MakeGradients(
            static_cast<std::uint32_t>(c), r, client_rows[c]);
        client.SendFrame(FrameType::kClientUpload,
                         EncodeClientUpload(gradients,
                                            static_cast<std::uint32_t>(c)));
        EXPECT_EQ(client.ExpectRoundAck(), r);
      }
    });
  }
  for (std::thread& thread : clients) thread.join();
  harness.Join();

  for (std::uint64_t r = 0; r < rounds; ++r) {
    std::vector<ClientUpdate> updates(num_clients);
    for (std::size_t c = 0; c < num_clients; ++c) {
      updates[c].user = static_cast<std::uint32_t>(c);
      updates[c].item_gradients = MakeGradients(
          static_cast<std::uint32_t>(c), r, client_rows[c]);
    }
    ApplyReferenceRound(reference_model, updates);
  }
  EXPECT_TRUE(service_model.item_factors() ==
              reference_model.item_factors());
  EXPECT_EQ(harness.stats().rounds_completed, rounds);
  EXPECT_EQ(harness.stats().uploads_received, num_clients * rounds);
  EXPECT_EQ(harness.stats().connections_accepted, num_clients);
}

TEST(FederationServiceTest, MalformedUploadIsRejectedAndConnectionSurvives) {
  Rng init(7);
  MfModel model(kNumItems, ModelParams(), init);
  ServiceHarness harness(&model, /*num_shards=*/1, /*round_size=*/1,
                         /*max_rounds=*/1);
  TestClient client(harness.port());

  // Garbage bytes: the FRWU decoder refuses them, the service replies with
  // kError, and the connection keeps serving.
  client.SendFrame(FrameType::kClientUpload, "definitely not FRWU bytes");
  const auto [error_type, error_payload] = client.NextFrame();
  EXPECT_EQ(error_type, FrameType::kError);

  const std::array<std::size_t, 1> rows = {3};
  client.SendFrame(
      FrameType::kClientUpload,
      EncodeClientUpload(MakeGradients(1, 0, rows), 1));
  EXPECT_EQ(client.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_EQ(harness.stats().rejected_uploads, 1u);
  EXPECT_EQ(harness.stats().rounds_completed, 1u);
}

TEST(FederationServiceTest, WrongDimUploadIsRejected) {
  Rng init(8);
  MfModel model(kNumItems, ModelParams(), init);
  ServiceHarness harness(&model, /*num_shards=*/1, /*round_size=*/1,
                         /*max_rounds=*/1);
  TestClient client(harness.port());

  // Well-formed FRWU, wrong geometry: a dim-4 upload against a dim-6 model.
  SparseRowMatrix wrong_dim(4);
  auto row = wrong_dim.RowMutable(2);
  for (float& v : row) v = 0.25f;
  client.SendFrame(FrameType::kClientUpload,
                   EncodeClientUpload(wrong_dim, 9));
  const auto [error_type, error_payload] = client.NextFrame();
  EXPECT_EQ(error_type, FrameType::kError);

  const std::array<std::size_t, 1> rows = {4};
  client.SendFrame(
      FrameType::kClientUpload,
      EncodeClientUpload(MakeGradients(2, 0, rows), 2));
  EXPECT_EQ(client.ExpectRoundAck(), 0u);
  harness.Join();
  EXPECT_EQ(harness.stats().rejected_uploads, 1u);
}

}  // namespace
}  // namespace fedrec
