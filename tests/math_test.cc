#include "common/math.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace fedrec {
namespace {

TEST(DotTest, BasicAndEmpty) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b), 4.0f - 10.0f + 18.0f);
  const std::vector<float> empty;
  EXPECT_FLOAT_EQ(Dot(empty, empty), 0.0f);
}

TEST(AxpyTest, AccumulatesScaled) {
  const std::vector<float> x{1.0f, -2.0f};
  std::vector<float> y{10.0f, 10.0f};
  Axpy(0.5f, x, y);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
  EXPECT_FLOAT_EQ(y[1], 9.0f);
}

TEST(ScaleFillTest, Basics) {
  std::vector<float> x{1.0f, 2.0f, 3.0f};
  Scale(2.0f, x);
  EXPECT_FLOAT_EQ(x[1], 4.0f);
  Fill(std::span<float>(x), -1.0f);
  for (float v : x) EXPECT_FLOAT_EQ(v, -1.0f);
}

TEST(L2NormTest, KnownValues) {
  const std::vector<float> x{3.0f, 4.0f};
  EXPECT_FLOAT_EQ(L2Norm(x), 5.0f);
  EXPECT_FLOAT_EQ(L2NormSquared(x), 25.0f);
  const std::vector<float> zero{0.0f, 0.0f};
  EXPECT_FLOAT_EQ(L2Norm(zero), 0.0f);
}

TEST(ClipL2Test, NoOpWithinBound) {
  std::vector<float> x{0.3f, 0.4f};  // norm 0.5
  const float factor = ClipL2(x, 1.0f);
  EXPECT_FLOAT_EQ(factor, 1.0f);
  EXPECT_FLOAT_EQ(x[0], 0.3f);
}

TEST(ClipL2Test, ScalesDownToBound) {
  std::vector<float> x{3.0f, 4.0f};  // norm 5
  const float factor = ClipL2(x, 1.0f);
  EXPECT_NEAR(factor, 0.2f, 1e-6f);
  EXPECT_NEAR(L2Norm(x), 1.0f, 1e-5f);
  // Direction preserved.
  EXPECT_NEAR(x[1] / x[0], 4.0f / 3.0f, 1e-5f);
}

TEST(ClipL2Test, ZeroVectorUntouched) {
  std::vector<float> x{0.0f, 0.0f};
  EXPECT_FLOAT_EQ(ClipL2(x, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(x[0], 0.0f);
}

TEST(ClipL2Test, ZeroBoundZeroesVector) {
  std::vector<float> x{1.0f, 1.0f};
  ClipL2(x, 0.0f);
  EXPECT_NEAR(L2Norm(x), 0.0f, 1e-7f);
}

TEST(SigmoidTest, KnownValuesAndSymmetry) {
  EXPECT_DOUBLE_EQ(Sigmoid(0.0), 0.5);
  EXPECT_NEAR(Sigmoid(2.0), 1.0 / (1.0 + std::exp(-2.0)), 1e-12);
  for (double x : {-5.0, -1.0, 0.3, 4.0}) {
    EXPECT_NEAR(Sigmoid(x) + Sigmoid(-x), 1.0, 1e-12);
  }
}

TEST(SigmoidTest, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(1000.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(Sigmoid(709.0)));
  EXPECT_TRUE(std::isfinite(Sigmoid(-709.0)));
}

TEST(LogSigmoidTest, MatchesDirectComputationInSafeRange) {
  for (double x : {-20.0, -3.0, -0.5, 0.0, 0.5, 3.0, 20.0}) {
    EXPECT_NEAR(LogSigmoid(x), std::log(Sigmoid(x)), 1e-10);
  }
}

TEST(LogSigmoidTest, StableAtExtremes) {
  // log sigmoid(-1000) ~ -1000; naive exp would overflow.
  EXPECT_NEAR(LogSigmoid(-1000.0), -1000.0, 1e-6);
  EXPECT_NEAR(LogSigmoid(1000.0), 0.0, 1e-12);
  EXPECT_TRUE(std::isfinite(LogSigmoid(-5000.0)));
}

TEST(AttackGTest, PaperDefinition) {
  // g(x) = x for x >= 0; e^x - 1 for x < 0 (Eq. 14).
  EXPECT_DOUBLE_EQ(AttackG(0.0), 0.0);
  EXPECT_DOUBLE_EQ(AttackG(2.5), 2.5);
  EXPECT_NEAR(AttackG(-1.0), std::exp(-1.0) - 1.0, 1e-12);
  EXPECT_NEAR(AttackG(-100.0), -1.0, 1e-12);  // bounded below by -1
}

TEST(AttackGTest, ContinuousAtZero) {
  EXPECT_NEAR(AttackG(1e-9), AttackG(-1e-9), 1e-8);
}

TEST(AttackGPrimeTest, DerivativeDefinitionAndContinuity) {
  EXPECT_DOUBLE_EQ(AttackGPrime(3.0), 1.0);
  EXPECT_DOUBLE_EQ(AttackGPrime(0.0), 1.0);
  EXPECT_NEAR(AttackGPrime(-1.0), std::exp(-1.0), 1e-12);
  EXPECT_NEAR(AttackGPrime(-1e-9), 1.0, 1e-8);  // continuous at 0
  EXPECT_NEAR(AttackGPrime(-50.0), 0.0, 1e-12); // vanishing push far above boundary
}

TEST(AttackGPrimeTest, MatchesFiniteDifferenceOfG) {
  const double h = 1e-6;
  for (double x : {-3.0, -1.0, -0.1, 0.2, 1.0, 4.0}) {
    const double numeric = (AttackG(x + h) - AttackG(x - h)) / (2 * h);
    EXPECT_NEAR(AttackGPrime(x), numeric, 1e-5) << "x=" << x;
  }
}

TEST(MeanVarianceTest, KnownValues) {
  const std::vector<float> x{1.0f, 2.0f, 3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(Mean(x), 2.5);
  // Sample variance of {1,2,3,4} = 5/3.
  EXPECT_NEAR(Variance(x), 5.0 / 3.0, 1e-9);
}

TEST(MeanVarianceTest, DegenerateInputs) {
  const std::vector<float> empty;
  EXPECT_DOUBLE_EQ(Mean(empty), 0.0);
  EXPECT_DOUBLE_EQ(Variance(empty), 0.0);
  const std::vector<float> one{7.0f};
  EXPECT_DOUBLE_EQ(Variance(one), 0.0);
}

}  // namespace
}  // namespace fedrec
