#include "model/ncf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "model/topk.h"

namespace fedrec {
namespace {

NcfConfig SmallConfig() {
  NcfConfig config;
  config.embedding_dim = 8;
  config.hidden = {16, 8};
  config.learning_rate = 0.02f;
  config.seed = 3;
  return config;
}

TEST(NcfModelTest, ConstructionShapes) {
  NcfModel model(20, 30, SmallConfig());
  EXPECT_EQ(model.num_users(), 20u);
  EXPECT_EQ(model.num_items(), 30u);
  EXPECT_EQ(model.user_embeddings().cols(), 8u);
  EXPECT_EQ(model.mlp().in_dim(), 16u);  // [u ; v]
}

TEST(NcfModelTest, ScoreAllMatchesScore) {
  NcfModel model(5, 12, SmallConfig());
  std::vector<float> scores(12);
  model.ScoreAll(2, scores);
  for (std::size_t j = 0; j < 12; ++j) {
    EXPECT_FLOAT_EQ(scores[j], model.Score(2, j)) << j;
  }
}

TEST(NcfModelTest, ScoreAllForEmbeddingMatchesOwnEmbedding) {
  NcfModel model(5, 12, SmallConfig());
  const auto u = model.user_embeddings().Row(1);
  const std::vector<float> copy(u.begin(), u.end());
  std::vector<float> a(12), b(12);
  model.ScoreAll(1, a);
  model.ScoreAllForEmbedding(copy, b);
  for (std::size_t j = 0; j < 12; ++j) EXPECT_FLOAT_EQ(a[j], b[j]);
}

TEST(NcfModelTest, TrainTripleReducesPairLoss) {
  NcfModel model(4, 10, SmallConfig());
  double last = 0.0;
  for (int step = 0; step < 200; ++step) {
    last = model.TrainTriple(0, 3, 7);
  }
  EXPECT_LT(last, std::log(2.0));  // better than random for this pair
  EXPECT_GT(model.Score(0, 3), model.Score(0, 7));
}

TEST(NcfModelTest, TrainTripleMovesAllParameterGroups) {
  NcfModel model(4, 10, SmallConfig());
  const Matrix users_before = model.user_embeddings();
  const Matrix items_before = model.item_embeddings();
  const float w_before = model.mlp().layer(0).weights().At(0, 0);
  for (int step = 0; step < 20; ++step) model.TrainTriple(1, 2, 8);
  EXPECT_FALSE(model.user_embeddings() == users_before);
  EXPECT_FALSE(model.item_embeddings() == items_before);
  EXPECT_NE(model.mlp().layer(0).weights().At(0, 0), w_before);
}

TEST(NcfModelTest, EpochTrainingImprovesRankingOnStructuredData) {
  SyntheticConfig data_config;
  data_config.num_users = 40;
  data_config.num_items = 60;
  data_config.mean_interactions_per_user = 10.0;
  data_config.seed = 5;
  const Dataset data = GenerateSynthetic(data_config);

  NcfModel model(data.num_users(), data.num_items(), SmallConfig());
  Rng rng(6);
  const double first = model.TrainEpoch(data, rng);
  double last = first;
  for (int epoch = 0; epoch < 12; ++epoch) last = model.TrainEpoch(data, rng);
  EXPECT_LT(last, first);

  // Interacted items should outrank random ones for most users.
  std::size_t wins = 0, total = 0;
  std::vector<float> scores(data.num_items());
  for (std::size_t u = 0; u < data.num_users(); ++u) {
    model.ScoreAll(u, scores);
    for (std::uint32_t pos : data.UserItems(u)) {
      const std::uint32_t neg =
          static_cast<std::uint32_t>((pos + 31) % data.num_items());
      if (data.HasInteraction(u, neg)) continue;
      ++total;
      if (scores[pos] > scores[neg]) ++wins;
    }
  }
  EXPECT_GT(static_cast<double>(wins) / static_cast<double>(total), 0.6);
}

TEST(NcfModelTest, DeterministicPerSeed) {
  SyntheticConfig data_config;
  data_config.num_users = 10;
  data_config.num_items = 15;
  data_config.seed = 7;
  const Dataset data = GenerateSynthetic(data_config);
  NcfModel a(10, 15, SmallConfig());
  NcfModel b(10, 15, SmallConfig());
  Rng ra(8), rb(8);
  EXPECT_DOUBLE_EQ(a.TrainEpoch(data, ra), b.TrainEpoch(data, rb));
  EXPECT_FLOAT_EQ(a.Score(0, 0), b.Score(0, 0));
}

}  // namespace
}  // namespace fedrec
