#include "attack/model_poison.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/math.h"
#include "data/synthetic.h"

namespace fedrec {
namespace {

struct AttackTestSetup {
  Dataset data;
  MfModel model;
  FedConfig fed;
};

AttackTestSetup MakeSetup(std::uint64_t seed) {
  SyntheticConfig config;
  config.num_users = 50;
  config.num_items = 80;
  config.mean_interactions_per_user = 10.0;
  config.seed = seed;
  AttackTestSetup setup{GenerateSynthetic(config), {}, {}};
  setup.fed.model.dim = 6;
  setup.fed.clients_per_round = 16;
  Rng rng(seed + 1);
  setup.model = MfModel(80, setup.fed.model, rng);
  return setup;
}

ModelPoisonConfig MakeConfig(std::vector<std::uint32_t> targets) {
  ModelPoisonConfig config;
  config.target_items = std::move(targets);
  config.kappa = 14;
  config.clip_norm = 0.5f;
  config.boost = 4.0f;
  config.seed = 3;
  return config;
}

RoundContext MakeContext(const AttackTestSetup& setup) {
  RoundContext context;
  context.model = &setup.model;
  context.config = &setup.fed;
  context.num_benign_users = setup.data.num_users();
  return context;
}

std::vector<std::uint32_t> Malicious(const AttackTestSetup& setup, std::size_t n) {
  std::vector<std::uint32_t> ids;
  for (std::size_t i = 0; i < n; ++i) {
    ids.push_back(static_cast<std::uint32_t>(setup.data.num_users() + i));
  }
  return ids;
}

template <typename AttackType>
void CheckConstraints(AttackType& attack, const AttackTestSetup& setup) {
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 3));
  ASSERT_EQ(updates.size(), 3u);
  for (const ClientUpdate& update : updates) {
    EXPECT_LE(update.item_gradients.row_count(), 14u);
    EXPECT_LE(update.item_gradients.MaxRowNorm(), 0.5f * 1.001f);
    EXPECT_TRUE(update.item_gradients.Contains(5));  // target row present
    EXPECT_GE(update.user, setup.data.num_users());
  }
}

TEST(ExplicitBoostTest, RespectsServerConstraints) {
  AttackTestSetup setup = MakeSetup(10);
  ExplicitBoostAttack attack(MakeConfig({5}), setup.data.num_items());
  CheckConstraints(attack, setup);
}

TEST(ExplicitBoostTest, TargetRowRaisesScoreAfterServerStep) {
  AttackTestSetup setup = MakeSetup(11);
  ExplicitBoostAttack attack(MakeConfig({5}), setup.data.num_items());
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));
  ASSERT_EQ(updates.size(), 1u);
  // Apply the server update V -= eta * grad and verify the *sum over random
  // user directions* of the target score went up relative to the gradient's
  // implied direction: grad row must be non-zero and the poisoned row must
  // have negative projection onto itself after negation — i.e. the update
  // moves v_t along -grad.
  const auto row = updates[0].item_gradients.Row(5);
  EXPECT_GT(L2Norm(row), 0.0f);
}

TEST(ExplicitBoostTest, RepeatedRoundsGrowTargetEmbedding) {
  AttackTestSetup setup = MakeSetup(12);
  ExplicitBoostAttack attack(MakeConfig({5}), setup.data.num_items());
  const RoundContext context = MakeContext(setup);
  const float initial_norm = L2Norm(setup.model.item_factors().Row(5));
  // Simulate many rounds with the server applying only this upload: the
  // boost consistently pushes v_t along the (self-aligning) malicious vector.
  for (int round = 0; round < 100; ++round) {
    const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));
    updates[0].item_gradients.AddTo(setup.model.item_factors(),
                                    -setup.fed.model.learning_rate);
  }
  EXPECT_GT(L2Norm(setup.model.item_factors().Row(5)), initial_norm);
}

TEST(PipAttackTest, RespectsServerConstraints) {
  AttackTestSetup setup = MakeSetup(13);
  const auto order = setup.data.ItemsByPopularity();
  std::vector<std::uint32_t> popular(order.begin(), order.begin() + 8);
  PipAttack attack(MakeConfig({5}), setup.data.num_items(), popular);
  CheckConstraints(attack, setup);
}

TEST(PipAttackTest, PullsTargetTowardPopularCentroid) {
  AttackTestSetup setup = MakeSetup(14);
  const auto order = setup.data.ItemsByPopularity();
  std::vector<std::uint32_t> popular(order.begin(), order.begin() + 8);
  ModelPoisonConfig config = MakeConfig({5});
  config.boost = 0.0f;  // isolate the alignment term
  PipAttack attack(config, setup.data.num_items(), popular, /*alignment=*/1.0f);
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));

  // Compute centroid and verify the target row gradient points from centroid
  // toward v_t (so -grad moves v_t toward the centroid).
  const Matrix& items = setup.model.item_factors();
  std::vector<float> centroid(items.cols(), 0.0f);
  for (std::uint32_t p : popular) {
    Axpy(1.0f / 8.0f, items.Row(p), std::span<float>(centroid));
  }
  std::vector<float> direction(items.cols());
  for (std::size_t d = 0; d < direction.size(); ++d) {
    direction[d] = items.At(5, d) - centroid[d];
  }
  const float projection = Dot(updates[0].item_gradients.Row(5), direction);
  EXPECT_GT(projection, 0.0f);
}

TEST(PipAttackTest, RequiresPopularityInfo) {
  AttackTestSetup setup = MakeSetup(15);
  EXPECT_DEATH(PipAttack(MakeConfig({5}), setup.data.num_items(), {}),
               "popularity");
}

TEST(P3Test, RespectsServerConstraintsDespiteBoost) {
  AttackTestSetup setup = MakeSetup(16);
  ModelPoisonConfig config = MakeConfig({5});
  config.boost = 100.0f;  // extreme amplification
  P3BoostedGradientAttack attack(config, setup.data.num_items());
  CheckConstraints(attack, setup);
}

TEST(P3Test, TargetRowSaturatesClipBound) {
  AttackTestSetup setup = MakeSetup(17);
  ModelPoisonConfig config = MakeConfig({5});
  config.boost = 100.0f;
  P3BoostedGradientAttack attack(config, setup.data.num_items());
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));
  // The boosted gradient is far beyond C, so after clipping the target row
  // sits exactly at the bound.
  EXPECT_NEAR(L2Norm(updates[0].item_gradients.Row(5)), 0.5f, 1e-3f);
}

TEST(P4Test, RespectsServerConstraints) {
  AttackTestSetup setup = MakeSetup(18);
  P4LittleIsEnoughAttack attack(MakeConfig({5}), setup.data.num_items(), 1.5f);
  CheckConstraints(attack, setup);
}

TEST(P4Test, CraftedRowStaysWithinSigmaBudget) {
  AttackTestSetup setup = MakeSetup(19);
  P4LittleIsEnoughAttack attack(MakeConfig({5}), setup.data.num_items(), 1.5f);
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));
  const auto target_row = updates[0].item_gradients.Row(5);

  // Collect the benign-looking coordinates (all non-target rows).
  std::vector<float> coords;
  for (std::size_t row : updates[0].item_gradients.row_ids()) {
    if (row == 5) continue;
    const auto r = updates[0].item_gradients.Row(row);
    coords.insert(coords.end(), r.begin(), r.end());
  }
  const double sigma = std::sqrt(Variance(coords));
  for (float v : target_row) {
    EXPECT_LE(std::abs(v), 1.5 * sigma + 1e-4)
        << "crafted coordinate escapes the z_max * sigma budget";
  }
}

TEST(ModelPoisonTest, Names) {
  AttackTestSetup setup = MakeSetup(20);
  const auto order = setup.data.ItemsByPopularity();
  std::vector<std::uint32_t> popular(order.begin(), order.begin() + 4);
  EXPECT_EQ(ExplicitBoostAttack(MakeConfig({1}), 80).name(), "eb");
  EXPECT_EQ(PipAttack(MakeConfig({1}), 80, popular).name(), "pipattack");
  EXPECT_EQ(P3BoostedGradientAttack(MakeConfig({1}), 80).name(), "p3");
  EXPECT_EQ(P4LittleIsEnoughAttack(MakeConfig({1}), 80).name(), "p4");
}

TEST(ModelPoisonTest, KappaTruncationKeepsTargets) {
  AttackTestSetup setup = MakeSetup(21);
  ModelPoisonConfig config = MakeConfig({5, 9});
  config.kappa = 3;  // tighter than the profile footprint
  ExplicitBoostAttack attack(config, setup.data.num_items());
  const RoundContext context = MakeContext(setup);
  const auto updates = attack.ProduceUpdates(context, Malicious(setup, 1));
  EXPECT_LE(updates[0].item_gradients.row_count(), 3u);
  EXPECT_TRUE(updates[0].item_gradients.Contains(5));
  EXPECT_TRUE(updates[0].item_gradients.Contains(9));
}

}  // namespace
}  // namespace fedrec
