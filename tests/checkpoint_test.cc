#include "shard/checkpoint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/threadpool.h"
#include "data/synthetic.h"
#include "fed/simulation.h"

namespace fedrec {
namespace {

Dataset SmallData() {
  SyntheticConfig config;
  config.num_users = 60;
  config.num_items = 90;
  config.mean_interactions_per_user = 12.0;
  config.seed = 1;
  return GenerateSynthetic(config);
}

FedConfig SmallConfig() {
  FedConfig config;
  config.model.dim = 8;
  config.model.learning_rate = 0.05f;
  config.clients_per_round = 16;
  config.epochs = 4;
  config.seed = 2;
  return config;
}

/// A deliberately tiny run, so the exhaustive corruption sweeps stay fast.
Dataset TinyData() {
  SyntheticConfig config;
  config.num_users = 6;
  config.num_items = 10;
  config.mean_interactions_per_user = 4.0;
  config.seed = 3;
  return GenerateSynthetic(config);
}

FedConfig TinyConfig() {
  FedConfig config;
  config.model.dim = 2;
  config.clients_per_round = 3;
  config.epochs = 2;
  config.seed = 4;
  return config;
}

std::string Encoded(const TrainingCheckpoint& checkpoint) {
  BinaryWriter writer;
  EncodeCheckpoint(checkpoint, writer);
  return writer.buffer();
}

bool SameRng(const RngSnapshot& a, const RngSnapshot& b) {
  for (int i = 0; i < 4; ++i) {
    if (a.state[i] != b.state[i]) return false;
  }
  return a.cached_gaussian == b.cached_gaussian &&
         a.has_cached_gaussian == b.has_cached_gaussian;
}

// --- Fingerprint ------------------------------------------------------------

TEST(CheckpointFingerprintTest, SensitiveToEveryTrajectoryShapingField) {
  const FedConfig base = SmallConfig();
  const std::uint64_t reference = CheckpointFingerprint(base, 90, 60, 0);

  FedConfig changed = base;
  changed.seed = 99;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.model.dim = 16;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.clients_per_round = 8;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.participation = ParticipationMode::kUniformPerRound;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.faults.dropout_rate = 0.1;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.faults.fault_seed = 7;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  changed = base;
  changed.aggregator.kind = AggregatorKind::kMedian;
  EXPECT_NE(CheckpointFingerprint(changed, 90, 60, 0), reference);

  EXPECT_NE(CheckpointFingerprint(base, 91, 60, 0), reference);
  EXPECT_NE(CheckpointFingerprint(base, 90, 61, 0), reference);
  EXPECT_NE(CheckpointFingerprint(base, 90, 60, 5), reference);
  EXPECT_EQ(CheckpointFingerprint(base, 90, 60, 0), reference);
}

// --- Codec ------------------------------------------------------------------

TEST(CheckpointCodecTest, CaptureEncodeDecodeRoundTripsEveryField) {
  const Dataset data = SmallData();
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 0.2;  // nonzero fault counters in the capture
  config.faults.fault_seed = 9;
  Simulation sim(data, config, 0, nullptr, nullptr);
  ASSERT_EQ(sim.RunRounds(6), 6u);  // mid-epoch: 4 rounds per epoch

  const TrainingCheckpoint original = CaptureCheckpoint(sim);
  EXPECT_TRUE(original.epoch_open);
  BinaryWriter writer;
  EncodeCheckpoint(original, writer);
  BinaryReader reader = BinaryReader::View(writer.buffer());
  TrainingCheckpoint decoded;
  const Status status = DecodeCheckpoint(reader, decoded);
  ASSERT_TRUE(status.ok()) << status.ToString();

  EXPECT_EQ(decoded.config_fingerprint, original.config_fingerprint);
  EXPECT_EQ(decoded.epoch, original.epoch);
  EXPECT_EQ(decoded.epoch_loss, original.epoch_loss);
  EXPECT_EQ(decoded.epoch_open, original.epoch_open);
  EXPECT_EQ(decoded.engine.epoch, original.engine.epoch);
  EXPECT_EQ(decoded.engine.round_in_epoch, original.engine.round_in_epoch);
  EXPECT_EQ(decoded.engine.rounds_this_epoch,
            original.engine.rounds_this_epoch);
  EXPECT_EQ(decoded.engine.global_round, original.engine.global_round);
  EXPECT_EQ(decoded.engine.order, original.engine.order);
  EXPECT_EQ(decoded.engine.have_next_selection,
            original.engine.have_next_selection);
  EXPECT_EQ(decoded.engine.have_next_updates,
            original.engine.have_next_updates);
  EXPECT_EQ(decoded.engine.fault_stats.dropped_uploads,
            original.engine.fault_stats.dropped_uploads);
  EXPECT_EQ(decoded.engine.clock_ticks, original.engine.clock_ticks);
  EXPECT_TRUE(SameRng(decoded.server_rng, original.server_rng));
  EXPECT_TRUE(decoded.item_factors == original.item_factors);
  ASSERT_EQ(decoded.clients.size(), original.clients.size());
  for (std::size_t i = 0; i < decoded.clients.size(); ++i) {
    EXPECT_EQ(decoded.clients[i].user_vector, original.clients[i].user_vector);
    EXPECT_EQ(decoded.clients[i].negatives, original.clients[i].negatives);
    EXPECT_TRUE(SameRng(decoded.clients[i].rng, original.clients[i].rng));
  }

  // The decoded checkpoint re-encodes to the same bytes — no field is lost.
  EXPECT_EQ(Encoded(decoded), writer.buffer());
}

TEST(CheckpointCodecTest, RejectsForeignMagicAndUnknownVersion) {
  BinaryWriter foreign;
  foreign.WriteU32(0x58585858);  // "XXXX"
  foreign.WriteU32(1);
  foreign.WriteU32(0);
  BinaryReader foreign_reader = BinaryReader::View(foreign.buffer());
  TrainingCheckpoint out;
  Status status = DecodeCheckpoint(foreign_reader, out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);

  BinaryWriter future;
  future.WriteU32(0x4B435246);  // "FRCK"
  future.WriteU32(2);           // unknown version
  future.WriteU32(0);
  BinaryReader future_reader = BinaryReader::View(future.buffer());
  status = DecodeCheckpoint(future_reader, out);
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(CheckpointCodecTest, EveryByteFlipFailsWithCorruption) {
  const Dataset data = TinyData();
  const FedConfig config = TinyConfig();
  Simulation sim(data, config, 0, nullptr, nullptr);
  ASSERT_GT(sim.RunRounds(1), 0u);
  const std::string pristine = Encoded(CaptureCheckpoint(sim));

  std::string corrupted;
  for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      corrupted = pristine;
      corrupted[offset] = static_cast<char>(
          static_cast<unsigned char>(corrupted[offset]) ^ (1u << bit));
      BinaryReader reader = BinaryReader::View(corrupted);
      TrainingCheckpoint out;
      const Status status = DecodeCheckpoint(reader, out);
      ASSERT_FALSE(status.ok()) << "offset=" << offset << " bit=" << bit;
      ASSERT_EQ(status.code(), StatusCode::kCorruption)
          << "offset=" << offset << " bit=" << bit;
    }
  }
}

TEST(CheckpointCodecTest, EveryTruncationFailsWithCorruption) {
  const Dataset data = TinyData();
  const FedConfig config = TinyConfig();
  Simulation sim(data, config, 0, nullptr, nullptr);
  ASSERT_GT(sim.RunRounds(1), 0u);
  const std::string pristine = Encoded(CaptureCheckpoint(sim));

  for (std::size_t keep = 0; keep < pristine.size(); ++keep) {
    BinaryReader reader =
        BinaryReader::View(std::string_view(pristine.data(), keep));
    TrainingCheckpoint out;
    const Status status = DecodeCheckpoint(reader, out);
    ASSERT_FALSE(status.ok()) << "keep=" << keep;
    ASSERT_EQ(status.code(), StatusCode::kCorruption) << "keep=" << keep;
  }
}

TEST(CheckpointFileTest, SaveLoadRoundTripsAndMissingFileFails) {
  const Dataset data = TinyData();
  const FedConfig config = TinyConfig();
  Simulation sim(data, config, 0, nullptr, nullptr);
  ASSERT_GT(sim.RunRounds(2), 0u);
  const TrainingCheckpoint checkpoint = CaptureCheckpoint(sim);

  const std::string path = testing::TempDir() + "fedrec_checkpoint.frck";
  ASSERT_TRUE(SaveCheckpoint(checkpoint, path).ok());
  Result<TrainingCheckpoint> loaded = LoadCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(Encoded(loaded.value()), Encoded(checkpoint));

  EXPECT_FALSE(LoadCheckpoint(testing::TempDir() + "no_such.frck").ok());
}

// --- Restore ----------------------------------------------------------------

TEST(CheckpointRestoreTest, RefusesForeignConfigAndDataset) {
  const Dataset data = SmallData();
  const FedConfig config = SmallConfig();
  Simulation source(data, config, 0, nullptr, nullptr);
  ASSERT_GT(source.RunRounds(2), 0u);
  const TrainingCheckpoint checkpoint = CaptureCheckpoint(source);

  FedConfig other_config = config;
  other_config.seed = 777;
  Simulation other(data, other_config, 0, nullptr, nullptr);
  const Status status = RestoreCheckpoint(checkpoint, other);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

/// Runs `config.epochs` epochs two ways — uninterrupted, and killed after
/// `kill_after_rounds` rounds then restored into a fresh simulation — and
/// asserts the two trajectories are bit-identical from the kill point on.
void ExpectKillRestoreBitIdentical(const Dataset& data, const FedConfig& config,
                                   std::size_t kill_after_rounds,
                                   ThreadPool* pool) {
  Simulation uninterrupted(data, config, 0, nullptr, pool);
  std::vector<double> reference_losses;
  for (std::size_t e = 0; e < config.epochs; ++e) {
    reference_losses.push_back(uninterrupted.RunEpoch());
  }

  Simulation doomed(data, config, 0, nullptr, pool);
  ASSERT_EQ(doomed.RunRounds(kill_after_rounds), kill_after_rounds);
  const TrainingCheckpoint checkpoint = CaptureCheckpoint(doomed);
  // Serialize through the codec, as a real kill/restart would.
  BinaryWriter writer;
  EncodeCheckpoint(checkpoint, writer);
  BinaryReader reader = BinaryReader::View(writer.buffer());
  TrainingCheckpoint reloaded;
  ASSERT_TRUE(DecodeCheckpoint(reader, reloaded).ok());

  Simulation resumed(data, config, 0, nullptr, pool);
  const Status status = RestoreCheckpoint(reloaded, resumed);
  ASSERT_TRUE(status.ok()) << status.ToString();

  const std::size_t first_epoch = resumed.current_epoch();
  for (std::size_t e = first_epoch; e < config.epochs; ++e) {
    EXPECT_DOUBLE_EQ(resumed.RunEpoch(), reference_losses[e])
        << "epoch " << e << " diverged after restore";
  }
  EXPECT_TRUE(resumed.model().item_factors() ==
              uninterrupted.model().item_factors());
  EXPECT_EQ(resumed.engine().fault_stats().dropped_uploads,
            uninterrupted.engine().fault_stats().dropped_uploads);
  EXPECT_EQ(resumed.engine().fault_stats().virtual_ticks,
            uninterrupted.engine().fault_stats().virtual_ticks);
}

TEST(CheckpointRestoreTest, MidEpochKillRestoreIsBitIdentical) {
  // 60 users / 16 per round = 4 rounds per epoch; 6 lands mid-epoch 1.
  ExpectKillRestoreBitIdentical(SmallData(), SmallConfig(),
                                /*kill_after_rounds=*/6, /*pool=*/nullptr);
}

TEST(CheckpointRestoreTest, EpochBoundaryKillRestoreIsBitIdentical) {
  ExpectKillRestoreBitIdentical(SmallData(), SmallConfig(),
                                /*kill_after_rounds=*/8, /*pool=*/nullptr);
}

TEST(CheckpointRestoreTest, PipelinedUniformRoundsSurviveKillRestore) {
  // kUniformPerRound + pool pipelines adjacent rounds, so the checkpoint must
  // carry the pre-drawn selection and possibly round t+1's trained uploads.
  FedConfig config = SmallConfig();
  config.participation = ParticipationMode::kUniformPerRound;
  ThreadPool pool(4);
  ExpectKillRestoreBitIdentical(SmallData(), config, /*kill_after_rounds=*/6,
                                &pool);
}

TEST(CheckpointRestoreTest, FaultScheduleSurvivesKillRestore) {
  // The restored run must replay the exact same failure history: the fault
  // plan is keyed by round, and the round counters travel in the checkpoint.
  FedConfig config = SmallConfig();
  config.faults.dropout_rate = 0.3;
  config.faults.straggler_rate = 0.2;
  config.faults.fault_seed = 23;
  ExpectKillRestoreBitIdentical(SmallData(), config, /*kill_after_rounds=*/5,
                                /*pool=*/nullptr);
}

}  // namespace
}  // namespace fedrec
