#include "common/status.h"

#include <gtest/gtest.h>

namespace fedrec {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("bad").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IOError("disk gone").message(), "disk gone");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::IOError("disk gone").ToString(), "IOError: disk gone");
  EXPECT_EQ(Status::NotFound("nope").ToString(), "NotFound: nope");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IOError("a"), Status::IOError("a"));
  EXPECT_FALSE(Status::IOError("a") == Status::IOError("b"));
  EXPECT_FALSE(Status::IOError("a") == Status::Corruption("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CheckOkAbortsOnError) {
  EXPECT_DEATH(Status::Internal("boom").CheckOK(), "Internal: boom");
  Status::OK().CheckOK();  // must not abort
}

TEST(StatusCodeTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

TEST(ResultTest, HoldsValueOnSuccess) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsStatusOnFailure) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, ValueOnFailureAborts) {
  Result<int> r(Status::IOError("nope"));
  EXPECT_DEATH((void)r.value(), "IOError");
}

TEST(ResultTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH(Result<int>{Status::OK()}, "without value");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ReturnNotOkTest, PropagatesError) {
  auto fails = []() -> Status { return Status::IOError("inner"); };
  auto outer = [&]() -> Status {
    FEDREC_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kIOError);

  auto succeeds = []() -> Status { return Status::OK(); };
  auto outer_ok = [&]() -> Status {
    FEDREC_RETURN_NOT_OK(succeeds());
    return Status::Internal("reached end");
  };
  EXPECT_EQ(outer_ok().code(), StatusCode::kInternal);
}

TEST(CheckTest, PassingCheckDoesNotAbort) {
  FEDREC_CHECK(1 + 1 == 2) << "never shown";
  FEDREC_CHECK_EQ(4, 4);
  FEDREC_CHECK_LE(1, 1);
}

TEST(CheckTest, FailingCheckAborts) {
  EXPECT_DEATH(FEDREC_CHECK(false) << "ctx 123", "ctx 123");
  EXPECT_DEATH(FEDREC_CHECK_EQ(1, 2), "1 vs 2");
  EXPECT_DEATH(FEDREC_CHECK_GT(0, 5), "0 vs 5");
}

}  // namespace
}  // namespace fedrec
