# CTest-level guard comparing the number of registered GoogleTest suites
# against the number of tests/*_test.cc files on disk. Run by the
# `test_manifest` suite registered in tests/CMakeLists.txt:
#   cmake -DTEST_SOURCE_DIR=<tests dir> -DREGISTERED_COUNT=<n> -P this_file

if(NOT DEFINED TEST_SOURCE_DIR OR NOT DEFINED REGISTERED_COUNT)
  message(FATAL_ERROR "test_manifest_test.cmake needs -DTEST_SOURCE_DIR and -DREGISTERED_COUNT")
endif()

file(GLOB on_disk RELATIVE ${TEST_SOURCE_DIR} ${TEST_SOURCE_DIR}/*_test.cc)
list(LENGTH on_disk on_disk_count)

if(NOT on_disk_count EQUAL REGISTERED_COUNT)
  message(FATAL_ERROR
    "tests/ holds ${on_disk_count} *_test.cc files but only ${REGISTERED_COUNT} "
    "suites are registered in tests/CMakeLists.txt. Add the missing file(s) to "
    "FEDREC_TEST_SOURCES so the new suite actually runs:\n  ${on_disk}")
endif()

message(STATUS "test manifest OK: ${on_disk_count} suites registered")
