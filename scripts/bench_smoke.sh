#!/usr/bin/env bash
# Smoke-runs one paper-table bench in its --quick preset and records the
# result as BENCH_<bench>_<utc>.json, so every PR leaves a perf/quality
# data point behind.
#
# Usage: scripts/bench_smoke.sh [build_dir] [bench_name] [out_dir]
#   build_dir   defaults to build-release, then build (first that exists)
#   bench_name  defaults to bench_table3_xi (~seconds in --quick)
#   out_dir     defaults to the repository root
#   BENCH_ARGS  env var overriding the default "--quick" preset flags
#               (e.g. BENCH_ARGS="" for a full-length measured run)
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-}"
bench_name="${2:-bench_table3_xi}"
out_dir="${3:-$repo_root}"

if [[ -z "$build_dir" ]]; then
  for candidate in "$repo_root/build-release" "$repo_root/build"; do
    if [[ -d "$candidate" ]]; then build_dir="$candidate"; break; fi
  done
fi
if [[ -z "$build_dir" || ! -d "$build_dir" ]]; then
  echo "error: no build directory found (run: cmake --preset release && cmake --build build-release -j)" >&2
  exit 1
fi

bench_bin="$build_dir/bench/$bench_name"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built" >&2
  exit 1
fi

csv_file="$(mktemp)"
trap 'rm -f "$csv_file"' EXIT

bench_args="${BENCH_ARGS---quick}"
start_s=$(python3 -c 'import time; print(time.time())')
# shellcheck disable=SC2086  # word-splitting of the arg list is intended
"$bench_bin" $bench_args --csv="$csv_file"
end_s=$(python3 -c 'import time; print(time.time())')
wall_seconds=$(awk -v a="$start_s" -v b="$end_s" 'BEGIN { printf "%.3f", b - a }')

stamp="$(date -u +%Y%m%dT%H%M%SZ)"
git_rev="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
out_file="$out_dir/BENCH_${bench_name}_${stamp}.json"

CSV_FILE="$csv_file" BENCH_NAME="$bench_name" BENCH_PRESET="$bench_args" \
WALL_SECONDS="$wall_seconds" \
GIT_REV="$git_rev" STAMP="$stamp" OUT_FILE="$out_file.tmp" python3 - <<'PY'
import csv, json, os

with open(os.environ["CSV_FILE"], newline="") as f:
    reader = csv.DictReader(f)
    label_key = reader.fieldnames[0] if reader.fieldnames else None
    rows = list(reader)

report = {
    "bench": os.environ["BENCH_NAME"],
    "preset": os.environ.get("BENCH_PRESET", "--quick") or "(default full)",
    "utc": os.environ["STAMP"],
    "git_rev": os.environ["GIT_REV"],
    "wall_seconds": float(os.environ["WALL_SECONDS"]),
    "nproc": os.cpu_count(),
    "rows": rows,
}

# Surface the perf instrumentation rows (round throughput, for the load
# benches the round-latency percentiles, and the per-stage coordinator
# costs scraped from the obs registry) as top-level aggregates for the
# perf trajectory.
surfaced = {
    "rounds/s": "rounds_per_sec_mean",
    "p50 ms": "p50_ms_mean",
    "p99 ms": "p99_ms_mean",
    "stage route ms": "stage_route_ms_mean",
    "stage shard_agg ms": "stage_shard_agg_ms_mean",
    "stage merge ms": "stage_merge_ms_mean",
    "stage apply ms": "stage_apply_ms_mean",
}
if label_key is not None:
    for row in rows:
        key = surfaced.get(row.get(label_key))
        if key is None:
            continue
        values = [float(v) for k, v in row.items()
                  if k != label_key and v]
        if values:
            report[key] = sum(values) / len(values)
with open(os.environ["OUT_FILE"], "w") as f:
    json.dump(report, f, indent=2)
    f.write("\n")
PY

# Prune superseded reports for the same bench only once the new one exists
# (a failed run must not wipe the previous data point): each bench keeps
# exactly one BENCH json instead of accumulating a stale duplicate per run.
for stale in "$out_dir/BENCH_${bench_name}_"[0-9]*.json; do
  [[ -e "$stale" ]] && rm -f "$stale"
done
mv "$out_file.tmp" "$out_file"

echo "wrote $out_file (${wall_seconds}s)"
