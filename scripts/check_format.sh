#!/usr/bin/env bash
# Check-only formatting gate. Fails if clang-format would change any of the
# files under review; never rewrites anything.
#
# By default it checks only files touched relative to a base ref (so a legacy
# file is not reformatted wholesale by an unrelated PR — no mass-reformat
# policy). Pass --all to sweep the whole tree, e.g. before proposing a
# dedicated formatting commit.
#
# Usage:
#   scripts/check_format.sh                # changed files vs origin/main
#   scripts/check_format.sh --base REF     # changed files vs REF
#   scripts/check_format.sh --all          # every tracked C++ file
#
# Exit codes: 0 clean, 1 files need formatting, 2 usage/tool error.
# When clang-format is not installed the script warns and exits 0 so local
# environments without LLVM tooling are not blocked; CI installs it.
set -u

cd "$(dirname "$0")/.."

base="origin/main"
mode="changed"
while [ $# -gt 0 ]; do
  case "$1" in
    --all) mode="all" ;;
    --base)
      shift
      [ $# -gt 0 ] || { echo "check_format: --base needs an argument" >&2; exit 2; }
      base="$1"
      ;;
    *) echo "check_format: unknown argument '$1'" >&2; exit 2 ;;
  esac
  shift
done

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "check_format: $CLANG_FORMAT not found; skipping (CI runs the real check)" >&2
  exit 0
fi

if [ "$mode" = "all" ]; then
  files=$(git ls-files '*.cc' '*.h')
else
  if ! git rev-parse --verify --quiet "$base" >/dev/null; then
    # Shallow CI clones may not have the base ref; fall back to HEAD~1 so the
    # check still covers the tip commit rather than silently passing.
    echo "check_format: base '$base' not found, using HEAD~1" >&2
    base="HEAD~1"
  fi
  files=$(git diff --name-only --diff-filter=ACMR "$base" -- '*.cc' '*.h')
fi

[ -n "$files" ] || { echo "check_format: no C++ files to check"; exit 0; }

bad=0
for f in $files; do
  [ -f "$f" ] || continue
  if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
    echo "needs formatting: $f"
    bad=1
  fi
done

if [ "$bad" -ne 0 ]; then
  echo "check_format: run '$CLANG_FORMAT -i <file>' on the files above" >&2
  exit 1
fi
echo "check_format: clean"
exit 0
